// Package mem models the GPU memory hierarchy from Table 1 of the paper:
// write-through per-CU L1 caches, a shared banked L2 that performs all
// global atomics (GPUs lack ownership coherence, so read-modify-writes are
// serialized at the last-level cache), and a multi-channel DRAM backend.
//
// The package provides two things the rest of the simulator composes:
//
//   - Timing: given an access issued "now", when do its side effects apply
//     at the L2 bank and when does its response reach the compute unit?
//     Bank serialization is what makes busy-wait polling toxic — pollers
//     queue ahead of the very release they are waiting for — and is the
//     mechanism behind the paper's 12x Baseline gap.
//   - Functional state: a word-granularity value store that synchronization
//     variables live in. Values are applied at bank-service time by the
//     caller, so value order always matches bank order.
package mem

import (
	"fmt"

	"awgsim/internal/event"
)

// Addr is a byte address in the simulated global address space.
type Addr uint64

// Config describes the memory hierarchy. The zero value is not usable; use
// DefaultConfig (which encodes Table 1) and override as needed.
type Config struct {
	LineSize int // cache line size in bytes (64 in the paper)

	L1Bytes   int         // per-CU L1 size
	L1Ways    int         // L1 associativity
	L1Latency event.Cycle // CU <-> L1 access latency

	L2Bytes   int         // shared L2 size
	L2Ways    int         // L2 associativity
	L2Latency event.Cycle // one-way CU <-> L2 latency
	L2Banks   int         // independent L2 banks (address-interleaved)

	AtomicService event.Cycle // bank occupancy per atomic read-modify-write

	LocalLatency event.Cycle // CU-scoped (local) atomic one-way latency
	LocalService event.Cycle // per-CU local atomic unit occupancy

	DRAMLatency  event.Cycle // L2 miss penalty to first word
	DRAMChannels int         // independent DRAM channels
	DRAMService  event.Cycle // channel occupancy per 64 B line
}

// DefaultConfig returns the Table 1 baseline hierarchy: 32 KB 16-way L1 at
// 30 cycles, 512 KB 16-way L2 at 50 cycles, DDR3 with 4 channels.
func DefaultConfig() Config {
	return Config{
		LineSize:      64,
		L1Bytes:       32 << 10,
		L1Ways:        16,
		L1Latency:     30,
		L2Bytes:       512 << 10,
		L2Ways:        16,
		L2Latency:     50,
		L2Banks:       16,
		AtomicService: 32,
		LocalLatency:  24,
		LocalService:  16,
		DRAMLatency:   160,
		DRAMChannels:  4,
		DRAMService:   32,
	}
}

func (c Config) validate() error {
	switch {
	case c.LineSize <= 0:
		return fmt.Errorf("mem: line size %d", c.LineSize)
	case c.L1Bytes <= 0 || c.L1Ways <= 0:
		return fmt.Errorf("mem: bad L1 geometry %d/%d", c.L1Bytes, c.L1Ways)
	case c.L2Bytes <= 0 || c.L2Ways <= 0:
		return fmt.Errorf("mem: bad L2 geometry %d/%d", c.L2Bytes, c.L2Ways)
	case c.L2Banks <= 0:
		return fmt.Errorf("mem: need at least one L2 bank")
	case c.DRAMChannels <= 0:
		return fmt.Errorf("mem: need at least one DRAM channel")
	}
	return nil
}

// Stats aggregates the hierarchy's activity counters for the experiment
// harnesses.
type Stats struct {
	Atomics        uint64 // global atomics performed at the L2
	LocalAtomics   uint64 // CU-scoped atomics
	Loads, Stores  uint64
	L1Hits, L1Miss uint64
	L2Hits, L2Miss uint64
	DRAMLines      uint64 // lines transferred to/from DRAM
	ContextBytes   uint64 // WG context save/restore traffic
	BankWait       uint64 // total cycles atomics spent queued at banks
	Arms           uint64 // wait-instruction arms sent to the SyncMon
}

// System is the timing + functional model of the hierarchy.
type System struct {
	cfg    Config
	eng    *event.Engine
	values *wordStore

	l1 []*Cache // one per CU
	l2 *Cache

	bankFree  []event.Cycle // next free cycle per L2 bank
	localFree []event.Cycle // next free cycle per CU local atomic unit
	chanFree  []event.Cycle // next free cycle per DRAM channel

	// Precomputed bank/channel interleaving for power-of-two geometry: the
	// bank selector runs once per atomic, so the Table 1 defaults (64 B
	// lines, 16 banks, 4 channels) take the shift/mask path.
	lineShift uint
	bankMask  uint64
	chanMask  uint64
	pow2Banks bool
	pow2Chans bool

	stats Stats
}

// NewSystem builds a hierarchy for numCUs compute units on the given engine.
func NewSystem(cfg Config, eng *event.Engine, numCUs int) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if numCUs <= 0 {
		return nil, fmt.Errorf("mem: numCUs %d", numCUs)
	}
	l2, err := NewCache(cfg.L2Bytes, cfg.L2Ways, cfg.LineSize)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:       cfg,
		eng:       eng,
		values:    newWordStore(),
		l2:        l2,
		bankFree:  make([]event.Cycle, cfg.L2Banks),
		localFree: make([]event.Cycle, numCUs),
		chanFree:  make([]event.Cycle, cfg.DRAMChannels),
	}
	if isPow2(cfg.LineSize) && isPow2(cfg.L2Banks) {
		s.pow2Banks = true
		s.lineShift = uint(log2(cfg.LineSize))
		s.bankMask = uint64(cfg.L2Banks - 1)
	}
	if isPow2(cfg.DRAMChannels) {
		s.pow2Chans = true
		s.chanMask = uint64(cfg.DRAMChannels - 1)
	}
	s.l1 = make([]*Cache, numCUs)
	for i := range s.l1 {
		if s.l1[i], err = NewCache(cfg.L1Bytes, cfg.L1Ways, cfg.LineSize); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Config reports the hierarchy configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns a snapshot of the activity counters.
func (s *System) Stats() Stats { return s.stats }

// L2 exposes the shared cache so the SyncMon can pin monitored lines.
func (s *System) L2() *Cache { return s.l2 }

func (s *System) bankOf(a Addr) int {
	if s.pow2Banks {
		return int(uint64(a) >> s.lineShift & s.bankMask)
	}
	return int(uint64(a) / uint64(s.cfg.LineSize) % uint64(s.cfg.L2Banks))
}

func (s *System) channelOf(line uint64) int {
	if s.pow2Chans {
		return int(line & s.chanMask)
	}
	return int(line % uint64(s.cfg.DRAMChannels))
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Read returns the current functional value of the word at a.
func (s *System) Read(a Addr) int64 { return s.values.read(a) }

// Write sets the functional value of the word at a.
func (s *System) Write(a Addr, v int64) { s.values.write(a, v) }

// WordAligned returns the address rounded down to its 8-byte word; the
// value store is word-granular.
func (a Addr) WordAligned() Addr { return a &^ 7 }

// PageWords reports the value store's page size in words. The fleet fault
// plane addresses ECC fault ranges in these page units.
func PageWords() int { return pageWords }

// CorruptRange models an uncorrectable ECC burst over the page range
// [page, page+pages): every word of each already-allocated page is
// overwritten with a splitmix64-derived poison pattern (absent pages hold
// no data to corrupt). Writes go through the ordinary COW write path, so
// snapshots taken before the burst are unaffected and restoring one heals
// the corruption — exactly the containment story the fleet layer's ECC
// recovery relies on. Returns the number of words poisoned.
func (s *System) CorruptRange(page uint64, pages int, seed uint64) int {
	return s.values.corruptRange(page, pages, seed)
}

// AtomicTiming computes when an atomic issued now against address a is
// serviced at its L2 bank (applyAt — the instant its read-modify-write and
// any SyncMon checks occur) and when its response reaches the CU (respAt).
// It reserves the bank, so concurrent atomics to the same bank queue behind
// one another.
func (s *System) AtomicTiming(a Addr) (applyAt, respAt event.Cycle) {
	now := s.eng.Now()
	arrive := now + s.cfg.L2Latency
	b := s.bankOf(a)
	start := arrive
	if s.bankFree[b] > start {
		s.stats.BankWait += uint64(s.bankFree[b] - start)
		start = s.bankFree[b]
	}
	applyAt = start + s.cfg.AtomicService
	s.bankFree[b] = applyAt
	s.stats.Atomics++
	// Atomics hit or allocate in the L2; monitored lines are pinned by the
	// SyncMon and never chosen as victims.
	if !s.l2.Access(a, true) {
		s.stats.L2Miss++
		s.stats.DRAMLines++
		applyAt += s.cfg.DRAMLatency
		s.bankFree[b] = applyAt
	} else {
		s.stats.L2Hits++
	}
	respAt = applyAt + s.cfg.L2Latency
	return applyAt, respAt
}

// LocalAtomicTiming is the CU-scoped counterpart of AtomicTiming: the
// operation is serviced at the CU's local synchronization unit rather than
// travelling to the L2, matching HeteroSync's locally scoped variants.
func (s *System) LocalAtomicTiming(cu int, a Addr) (applyAt, respAt event.Cycle) {
	now := s.eng.Now()
	arrive := now + s.cfg.LocalLatency
	start := arrive
	if s.localFree[cu] > start {
		s.stats.BankWait += uint64(s.localFree[cu] - start)
		start = s.localFree[cu]
	}
	applyAt = start + s.cfg.LocalService
	s.localFree[cu] = applyAt
	s.stats.LocalAtomics++
	return applyAt, applyAt + s.cfg.LocalLatency
}

// ArmTiming computes the timing of a wait-instruction arm travelling to
// the SyncMon at the L2: same path and bank occupancy as an atomic, but
// counted separately (arms are not atomic instructions in the paper's
// wait-efficiency metric).
func (s *System) ArmTiming(a Addr) (applyAt, respAt event.Cycle) {
	now := s.eng.Now()
	arrive := now + s.cfg.L2Latency
	b := s.bankOf(a)
	start := arrive
	if s.bankFree[b] > start {
		s.stats.BankWait += uint64(s.bankFree[b] - start)
		start = s.bankFree[b]
	}
	applyAt = start + s.cfg.AtomicService
	s.bankFree[b] = applyAt
	s.stats.Arms++
	return applyAt, applyAt + s.cfg.L2Latency
}

// LoadTiming computes the response time of a (non-atomic) load issued now by
// cu. It updates the cache state: L1 hit, else L2, else DRAM.
func (s *System) LoadTiming(cu int, a Addr) (respAt event.Cycle) {
	now := s.eng.Now()
	s.stats.Loads++
	if s.l1[cu].Access(a, true) {
		s.stats.L1Hits++
		return now + s.cfg.L1Latency
	}
	s.stats.L1Miss++
	if s.l2.Access(a, true) {
		s.stats.L2Hits++
		return now + s.cfg.L1Latency + s.cfg.L2Latency
	}
	s.stats.L2Miss++
	s.stats.DRAMLines++
	return now + s.cfg.L1Latency + s.cfg.L2Latency + s.cfg.DRAMLatency
}

// StoreTiming computes the completion time of a write-through store issued
// now by cu. The store updates L1 (no allocate on miss) and always writes
// through to the L2.
func (s *System) StoreTiming(cu int, a Addr) (respAt event.Cycle) {
	now := s.eng.Now()
	s.stats.Stores++
	if s.l1[cu].Access(a, false) {
		s.stats.L1Hits++
	} else {
		s.stats.L1Miss++
	}
	if s.l2.Access(a, true) {
		s.stats.L2Hits++
		return now + s.cfg.L1Latency + s.cfg.L2Latency
	}
	s.stats.L2Miss++
	s.stats.DRAMLines++
	return now + s.cfg.L1Latency + s.cfg.L2Latency + s.cfg.DRAMLatency
}

// ContextTraffic computes the completion time of moving bytes of WG context
// between the CU and memory (save or restore). Lines are striped across the
// DRAM channels; the transfer completes when the last line does.
func (s *System) ContextTraffic(bytes int) (doneAt event.Cycle) {
	if bytes <= 0 {
		return s.eng.Now()
	}
	now := s.eng.Now()
	lines := (bytes + s.cfg.LineSize - 1) / s.cfg.LineSize
	s.stats.ContextBytes += uint64(bytes)
	s.stats.DRAMLines += uint64(lines)
	doneAt = now
	for i := 0; i < lines; i++ {
		ch := s.channelOf(uint64(i))
		start := now + s.cfg.L2Latency + s.cfg.DRAMLatency
		if s.chanFree[ch] > start {
			start = s.chanFree[ch]
		}
		end := start + s.cfg.DRAMService
		s.chanFree[ch] = end
		if end > doneAt {
			doneAt = end
		}
	}
	return doneAt
}

// InvalidateCU drops the L1 contents of a CU, as happens when its resident
// state is preempted away in the oversubscribed experiment.
func (s *System) InvalidateCU(cu int) { s.l1[cu].InvalidateAll() }
