package mem

import "awgsim/internal/hashutil"

// pageShift sizes a functional-store page at 512 words (4 KB), the sweet
// spot for the kernels' synchronization variables: a benchmark's whole
// variable block usually lands in one or two pages, so the last-page hit
// path serves almost every bank-service read.
const (
	pageShift = 9
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

// wordStore is the word-granularity functional value store: a paged flat
// array reached through an open-addressed page directory, replacing the
// per-word Go map on the bank-service path. Absent words read as zero, as
// the map did; pages are never freed within a run.
//
// The directory maps page number -> 1-based slab index (0 = unallocated),
// and a one-entry last-page cache short-circuits the directory probe for
// the streaming case.
type wordStore struct {
	dir      *hashutil.Flat[uint64, int32]
	pages    [][]int64
	shared   []bool // parallel to pages: page is shared with a snapshot
	lastPage uint64
	lastIdx  int32 // 0-based slab index of lastPage; -1 = empty cache
}

func newWordStore() *wordStore {
	return &wordStore{
		dir:     hashutil.NewFlat[uint64, int32](16, hashutil.Mix64),
		lastIdx: -1,
	}
}

// read returns the word at the (word-aligned) address a, zero when unset.
func (w *wordStore) read(a Addr) int64 {
	word := uint64(a) >> 3
	page := word >> pageShift
	if page == w.lastPage && w.lastIdx >= 0 {
		return w.pages[w.lastIdx][word&pageMask]
	}
	p := w.dir.Ref(page)
	if p == nil {
		return 0
	}
	w.lastPage, w.lastIdx = page, *p-1
	return w.pages[*p-1][word&pageMask]
}

// write sets the word at the (word-aligned) address a, allocating its page
// on first touch. Pages shared with a snapshot are copy-on-write: the first
// mutation after a snapshot clones the page, so a fork costs O(dirty pages),
// not O(store).
func (w *wordStore) write(a Addr, v int64) {
	word := uint64(a) >> 3
	page := word >> pageShift
	if page == w.lastPage && w.lastIdx >= 0 {
		idx := w.lastIdx
		if w.shared[idx] {
			w.splitPage(idx)
		}
		w.pages[idx][word&pageMask] = v
		return
	}
	p := w.dir.Put(page)
	if *p == 0 {
		w.pages = append(w.pages, make([]int64, pageWords))
		w.shared = append(w.shared, false)
		*p = int32(len(w.pages))
	}
	idx := *p - 1
	if w.shared[idx] {
		w.splitPage(idx)
	}
	w.lastPage, w.lastIdx = page, idx
	w.pages[idx][word&pageMask] = v
}

// splitPage replaces the page at slab index idx with a private copy, leaving
// the original to whatever snapshot it is shared with.
func (w *wordStore) splitPage(idx int32) {
	w.pages[idx] = append([]int64(nil), w.pages[idx]...)
	w.shared[idx] = false
}

// corruptRange poisons every word of each allocated page in
// [page, page+n) with a splitmix64 stream (the same generator the fault
// subsystem uses, so the pattern is seed-addressable). Mutations route
// through write: shared (snapshotted) pages split copy-on-write first.
func (w *wordStore) corruptRange(page uint64, n int, seed uint64) int {
	words := 0
	state := seed
	for p := page; p < page+uint64(n); p++ {
		if w.dir.Ref(p) == nil {
			continue
		}
		for i := uint64(0); i < pageWords; i++ {
			state += 0x9e3779b97f4a7c15
			x := state
			x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
			x = (x ^ x>>27) * 0x94d049bb133111eb
			w.write(Addr((p<<pageShift+i)<<3), int64(x^x>>31))
			words++
		}
	}
	return words
}
