package mem

import (
	"awgsim/internal/event"
	"awgsim/internal/hashutil"
)

// Snapshot/Restore for the memory hierarchy. The functional word store is
// the one structure big enough to deserve copy-on-write: a snapshot shares
// the store's pages (copying only the page-pointer slice and the directory)
// and marks them shared; the store clones a page on its first post-snapshot
// write. Everything else — tag arrays, bank/channel reservations, activity
// counters — is copied eagerly; those are small and fully overwritten by a
// restore anyway.

// Snapshot is a point-in-time copy of a System's simulated state. It is
// immutable after capture and may be restored any number of times, on the
// system that produced it.
type Snapshot struct {
	values    *wordStoreSnap
	l1        []*cacheSnap
	l2        *cacheSnap
	bankFree  []event.Cycle
	localFree []event.Cycle
	chanFree  []event.Cycle
	stats     Stats
}

// Snapshot captures the hierarchy's mutable state: functional values (pages
// shared copy-on-write), cache tag arrays, bank/local/channel reservations,
// and the activity counters.
func (s *System) Snapshot() *Snapshot {
	sn := &Snapshot{
		values:    s.values.snapshot(),
		l1:        make([]*cacheSnap, len(s.l1)),
		l2:        s.l2.snapshot(),
		bankFree:  append([]event.Cycle(nil), s.bankFree...),
		localFree: append([]event.Cycle(nil), s.localFree...),
		chanFree:  append([]event.Cycle(nil), s.chanFree...),
		stats:     s.stats,
	}
	for i, c := range s.l1 {
		sn.l1[i] = c.snapshot()
	}
	return sn
}

// Restore rewinds the hierarchy to the snapshot. The word store's pages
// become shared with the snapshot again, so the snapshot survives further
// mutation and repeated restores.
func (s *System) Restore(sn *Snapshot) {
	s.values.restore(sn.values)
	for i, c := range s.l1 {
		c.restore(sn.l1[i])
	}
	s.l2.restore(sn.l2)
	copy(s.bankFree, sn.bankFree)
	copy(s.localFree, sn.localFree)
	copy(s.chanFree, sn.chanFree)
	s.stats = sn.stats
}

// Bytes estimates the snapshot's memory footprint. Shared word-store pages
// count only their pointer — the whole point of the copy-on-write split.
func (sn *Snapshot) Bytes() int {
	n := 64 + sn.values.bytes() + sn.l2.bytes()
	for _, c := range sn.l1 {
		n += c.bytes()
	}
	n += 8 * (len(sn.bankFree) + len(sn.localFree) + len(sn.chanFree))
	return n
}

// wordStoreSnap is a point-in-time copy of the word store: a directory clone
// plus the page-pointer slice. The pages themselves are shared with the live
// store until it writes to one.
type wordStoreSnap struct {
	dir      *hashutil.Flat[uint64, int32]
	pages    [][]int64
	lastPage uint64
	lastIdx  int32
}

func (w *wordStore) snapshot() *wordStoreSnap {
	sn := &wordStoreSnap{
		dir:      w.dir.Clone(),
		pages:    append([][]int64(nil), w.pages...),
		lastPage: w.lastPage,
		lastIdx:  w.lastIdx,
	}
	for i := range w.shared {
		w.shared[i] = true
	}
	return sn
}

func (w *wordStore) restore(sn *wordStoreSnap) {
	w.dir.CopyFrom(sn.dir)
	w.pages = w.pages[:0]
	w.pages = append(w.pages, sn.pages...)
	w.shared = w.shared[:0]
	for range w.pages {
		w.shared = append(w.shared, true)
	}
	w.lastPage, w.lastIdx = sn.lastPage, sn.lastIdx
}

func (sn *wordStoreSnap) bytes() int {
	// Directory slots (key + val + used flag) plus one pointer per shared
	// page; the page payloads belong to the live store.
	return 13*sn.dir.Len() + 24*len(sn.pages)
}

// cacheSnap is a point-in-time copy of one tag array. Only touched sets
// are stored (every other line is zero — see Cache.touch); full keeps the
// live array's length so bytes() reports the same footprint a dense copy
// would, because that figure feeds simulated migration-pause costs.
type cacheSnap struct {
	full         int
	ways         int
	sets         []int32     // touched set indices, in first-touch order
	lines        []cacheLine // len(sets)*ways entries, same order
	hits, misses uint64
	pinnedCount  int
	lruClock     uint64
}

func (c *Cache) snapshot() *cacheSnap {
	sn := &cacheSnap{
		full:        len(c.lines),
		ways:        c.ways,
		sets:        append([]int32(nil), c.touched...),
		lines:       make([]cacheLine, 0, len(c.touched)*c.ways),
		hits:        c.hits,
		misses:      c.misses,
		pinnedCount: c.pinnedCount,
		lruClock:    c.lruClock,
	}
	for _, s := range c.touched {
		sn.lines = append(sn.lines, c.set(int(s))...)
	}
	return sn
}

func (c *Cache) restore(sn *cacheSnap) {
	for _, s := range c.touched {
		clear(c.set(int(s)))
		c.touchedSet[s] = false
	}
	c.touched = append(c.touched[:0], sn.sets...)
	for i, s := range sn.sets {
		c.touchedSet[s] = true
		copy(c.set(int(s)), sn.lines[i*sn.ways:(i+1)*sn.ways])
	}
	c.hits, c.misses = sn.hits, sn.misses
	c.pinnedCount = sn.pinnedCount
	c.lruClock = sn.lruClock
}

func (sn *cacheSnap) bytes() int { return 32 * sn.full }
