package mem

import (
	"reflect"
	"testing"
)

// fieldNames returns a struct type's field names in declaration order.
func fieldNames(v any) []string {
	rt := reflect.TypeOf(v)
	names := make([]string, rt.NumField())
	for i := range names {
		names[i] = rt.Field(i).Name
	}
	return names
}

// TestSnapshotCoversSystem pins the field lists of every stateful memory
// struct. If one fails, a field was added (or renamed): decide whether it
// is replayable state, teach Snapshot()/Restore() about it, and update the
// list here.
func TestSnapshotCoversSystem(t *testing.T) {
	// Covered: values, l1, l2, bankFree, localFree, chanFree, stats.
	// Excluded: cfg/eng (construction wiring), lineShift/bankMask/chanMask/
	// pow2Banks/pow2Chans (derived from cfg, immutable).
	system := []string{
		"cfg", "eng", "values", "l1", "l2", "bankFree", "localFree",
		"chanFree", "lineShift", "bankMask", "chanMask", "pow2Banks",
		"pow2Chans", "stats",
	}
	// Covered: dir, pages, lastPage, lastIdx (pages copy-on-write).
	// Excluded: shared — the COW bookkeeping itself; Restore re-marks it.
	words := []string{"dir", "pages", "shared", "lastPage", "lastIdx"}
	// Covered: lines, hits, misses, pinnedCount, lruClock.
	// Excluded: the geometry fields, immutable after construction.
	cache := []string{
		"sets", "ways", "lineSize", "lines", "lineShift", "setMask",
		"setShift", "pow2", "hits", "misses", "pinnedCount", "lruClock",
	}
	for _, c := range []struct {
		name string
		got  []string
		want []string
	}{
		{"mem.System", fieldNames(System{}), system},
		{"mem.wordStore", fieldNames(wordStore{}), words},
		{"mem.Cache", fieldNames(Cache{}), cache},
	} {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("%s fields changed without updating Snapshot():\n  got  %v\n  want %v", c.name, c.got, c.want)
		}
	}
}
