package mem

import "fmt"

// Cache is a set-associative tag array with true-LRU replacement and
// per-line pinning. It models presence only — data values live in the
// System's word store — which is all the timing model needs.
//
// Pinning implements the paper's monitored-line behaviour: the SyncMon sets
// a monitored bit in the L2 tag and "pins monitored cachelines such that
// they are not evicted" (Section V.B). A pinned line is skipped during
// victim selection; if every way in a set is pinned, the access bypasses
// the cache (treated as a miss without allocation).
type Cache struct {
	sets     int
	ways     int
	lineSize int
	lines    []cacheLine // sets*ways entries

	// Shift/mask fast path for power-of-two geometry (every Table 1 cache):
	// index() runs on each L1/L2 access and each atomic's allocate probe.
	lineShift uint
	setMask   uint64
	setShift  uint
	pow2      bool

	hits, misses uint64
	pinnedCount  int

	// lruClock is per-cache: only relative recency within one cache
	// matters, and a process-wide clock would be shared mutable state
	// across concurrently running simulations.
	lruClock uint64

	// touched lists the sets holding any non-zero line, in first-touch
	// order; touchedSet is its membership index. Every line outside a
	// touched set is zero — the invariant that lets snapshots copy only
	// touched sets instead of the whole tag array (the suite's working
	// sets occupy a few hundred lines of an 8k-line L2, so checkpoints
	// were ~96% zero copies). Mutators call touch before writing a line.
	touched []int32
	//lint:allow snapcover membership index of touched; restore rebuilds it from the snapshot's set list
	touchedSet []bool
}

// A line's key folds the tag and valid bit into one word — tag<<1|1 when
// valid, all-zero when invalid — so the way scan is a single compare and a
// zeroed line (fresh slab, InvalidateAll) reads as invalid with no separate
// flag to maintain.
type cacheLine struct {
	key    uint64 // tag<<1 | 1; 0 = invalid
	pinned bool
	lru    uint64 // larger = more recently used
}

// NewCache builds a cache of the given total size, associativity and line
// size. Size must be a multiple of ways*lineSize.
func NewCache(sizeBytes, ways, lineSize int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("mem: bad cache geometry %d/%d/%d", sizeBytes, ways, lineSize)
	}
	sets := sizeBytes / (ways * lineSize)
	if sets == 0 || sizeBytes%(ways*lineSize) != 0 {
		return nil, fmt.Errorf("mem: cache size %d not a multiple of ways*line %d", sizeBytes, ways*lineSize)
	}
	c := &Cache{
		sets:     sets,
		ways:     ways,
		lineSize: lineSize,
	}
	if sl, ok := getSlabs(sets, ways); ok {
		c.lines, c.touchedSet, c.touched = sl.lines, sl.touchedSet, sl.touched
	} else {
		c.lines = make([]cacheLine, sets*ways)
		c.touchedSet = make([]bool, sets)
	}
	if isPow2(lineSize) && isPow2(sets) {
		c.pow2 = true
		c.lineShift = uint(log2(lineSize))
		c.setMask = uint64(sets - 1)
		c.setShift = uint(log2(sets))
	}
	return c, nil
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways reports the associativity.
func (c *Cache) Ways() int { return c.ways }

// Pinned reports how many lines are currently pinned.
func (c *Cache) Pinned() int { return c.pinnedCount }

func (c *Cache) index(a Addr) (set int, tag uint64) {
	if c.pow2 {
		line := uint64(a) >> c.lineShift
		return int(line & c.setMask), line >> c.setShift
	}
	line := uint64(a) / uint64(c.lineSize)
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

func (c *Cache) set(i int) []cacheLine { return c.lines[i*c.ways : (i+1)*c.ways] }

// touch records that set i is about to hold a non-zero line.
func (c *Cache) touch(i int) {
	if !c.touchedSet[i] {
		c.touchedSet[i] = true
		c.touched = append(c.touched, int32(i))
	}
}

// Access looks up a. On a hit it refreshes LRU state and returns true. On a
// miss it returns false and, when allocate is set, fills the line by
// evicting the least recently used unpinned way (no allocation happens if
// the whole set is pinned).
func (c *Cache) Access(a Addr, allocate bool) bool {
	set, tag := c.index(a)
	key := tag<<1 | 1
	ways := c.set(set)
	c.lruClock++
	for i := range ways {
		if ways[i].key == key {
			ways[i].lru = c.lruClock
			c.hits++
			return true
		}
	}
	c.misses++
	if !allocate {
		return false
	}
	victim := -1
	for i := range ways {
		if ways[i].pinned {
			continue
		}
		if ways[i].key == 0 {
			victim = i
			break
		}
		if victim == -1 || ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	if victim == -1 {
		return false // fully pinned set: bypass
	}
	// The fill is the only transition from a zero line to a non-zero one
	// (LRU refresh and pin toggles touch valid lines only), so it is the
	// one mutation that has to maintain the touched-set invariant.
	c.touch(set)
	ways[victim] = cacheLine{key: key, lru: c.lruClock}
	return false
}

// Contains reports whether a is resident, without touching LRU state.
func (c *Cache) Contains(a Addr) bool {
	set, tag := c.index(a)
	key := tag<<1 | 1
	for _, w := range c.set(set) {
		if w.key == key {
			return true
		}
	}
	return false
}

// Pin marks a's line as unevictable, allocating it first if absent. It
// reports whether the pin took effect (it fails only if the set is already
// fully pinned by other lines).
func (c *Cache) Pin(a Addr) bool {
	set, tag := c.index(a)
	key := tag<<1 | 1
	ways := c.set(set)
	for i := range ways {
		if ways[i].key == key {
			if !ways[i].pinned {
				ways[i].pinned = true
				c.pinnedCount++
			}
			return true
		}
	}
	c.Access(a, true)
	for i := range ways {
		if ways[i].key == key {
			ways[i].pinned = true
			c.pinnedCount++
			return true
		}
	}
	return false
}

// Unpin clears the pin on a's line, making it evictable again.
func (c *Cache) Unpin(a Addr) {
	set, tag := c.index(a)
	key := tag<<1 | 1
	ways := c.set(set)
	for i := range ways {
		if ways[i].key == key && ways[i].pinned {
			ways[i].pinned = false
			c.pinnedCount--
			return
		}
	}
}

// InvalidateAll drops every line, including pinned ones. Only touched
// sets need zeroing — everything else already is.
func (c *Cache) InvalidateAll() {
	for _, s := range c.touched {
		clear(c.set(int(s)))
		c.touchedSet[s] = false
	}
	c.touched = c.touched[:0]
	c.pinnedCount = 0
}

// HitRate reports hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
