package mem

import "fmt"

// Cache is a set-associative tag array with true-LRU replacement and
// per-line pinning. It models presence only — data values live in the
// System's word store — which is all the timing model needs.
//
// Pinning implements the paper's monitored-line behaviour: the SyncMon sets
// a monitored bit in the L2 tag and "pins monitored cachelines such that
// they are not evicted" (Section V.B). A pinned line is skipped during
// victim selection; if every way in a set is pinned, the access bypasses
// the cache (treated as a miss without allocation).
type Cache struct {
	sets     int
	ways     int
	lineSize int
	lines    []cacheLine // sets*ways entries

	// Shift/mask fast path for power-of-two geometry (every Table 1 cache):
	// index() runs on each L1/L2 access and each atomic's allocate probe.
	lineShift uint
	setMask   uint64
	setShift  uint
	pow2      bool

	hits, misses uint64
	pinnedCount  int

	// lruClock is per-cache: only relative recency within one cache
	// matters, and a process-wide clock would be shared mutable state
	// across concurrently running simulations.
	lruClock uint64
}

type cacheLine struct {
	tag    uint64
	valid  bool
	pinned bool
	lru    uint64 // larger = more recently used
}

// NewCache builds a cache of the given total size, associativity and line
// size. Size must be a multiple of ways*lineSize.
func NewCache(sizeBytes, ways, lineSize int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("mem: bad cache geometry %d/%d/%d", sizeBytes, ways, lineSize)
	}
	sets := sizeBytes / (ways * lineSize)
	if sets == 0 || sizeBytes%(ways*lineSize) != 0 {
		return nil, fmt.Errorf("mem: cache size %d not a multiple of ways*line %d", sizeBytes, ways*lineSize)
	}
	c := &Cache{
		sets:     sets,
		ways:     ways,
		lineSize: lineSize,
		lines:    make([]cacheLine, sets*ways),
	}
	if isPow2(lineSize) && isPow2(sets) {
		c.pow2 = true
		c.lineShift = uint(log2(lineSize))
		c.setMask = uint64(sets - 1)
		c.setShift = uint(log2(sets))
	}
	return c, nil
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways reports the associativity.
func (c *Cache) Ways() int { return c.ways }

// Pinned reports how many lines are currently pinned.
func (c *Cache) Pinned() int { return c.pinnedCount }

func (c *Cache) index(a Addr) (set int, tag uint64) {
	if c.pow2 {
		line := uint64(a) >> c.lineShift
		return int(line & c.setMask), line >> c.setShift
	}
	line := uint64(a) / uint64(c.lineSize)
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

func (c *Cache) set(i int) []cacheLine { return c.lines[i*c.ways : (i+1)*c.ways] }

// Access looks up a. On a hit it refreshes LRU state and returns true. On a
// miss it returns false and, when allocate is set, fills the line by
// evicting the least recently used unpinned way (no allocation happens if
// the whole set is pinned).
func (c *Cache) Access(a Addr, allocate bool) bool {
	set, tag := c.index(a)
	ways := c.set(set)
	c.lruClock++
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.lruClock
			c.hits++
			return true
		}
	}
	c.misses++
	if !allocate {
		return false
	}
	victim := -1
	for i := range ways {
		if ways[i].pinned {
			continue
		}
		if !ways[i].valid {
			victim = i
			break
		}
		if victim == -1 || ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	if victim == -1 {
		return false // fully pinned set: bypass
	}
	ways[victim] = cacheLine{tag: tag, valid: true, lru: c.lruClock}
	return false
}

// Contains reports whether a is resident, without touching LRU state.
func (c *Cache) Contains(a Addr) bool {
	set, tag := c.index(a)
	for _, w := range c.set(set) {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Pin marks a's line as unevictable, allocating it first if absent. It
// reports whether the pin took effect (it fails only if the set is already
// fully pinned by other lines).
func (c *Cache) Pin(a Addr) bool {
	set, tag := c.index(a)
	ways := c.set(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			if !ways[i].pinned {
				ways[i].pinned = true
				c.pinnedCount++
			}
			return true
		}
	}
	c.Access(a, true)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].pinned = true
			c.pinnedCount++
			return true
		}
	}
	return false
}

// Unpin clears the pin on a's line, making it evictable again.
func (c *Cache) Unpin(a Addr) {
	set, tag := c.index(a)
	ways := c.set(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag && ways[i].pinned {
			ways[i].pinned = false
			c.pinnedCount--
			return
		}
	}
}

// InvalidateAll drops every line, including pinned ones.
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	c.pinnedCount = 0
}

// HitRate reports hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
