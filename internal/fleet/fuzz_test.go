package fleet_test

import (
	"testing"

	"awgsim/internal/fleet"
	"awgsim/internal/sim"
)

// FuzzFleetEvents feeds seed-generated churn schedules through small
// fleets of fuzzed size under a rotating policy and uses the SLO checker
// as the oracle: no panic, no wedged loop, IFP workloads either complete
// verified or are cleanly drained/diagnosed, non-IFP deadlocks carry a
// diagnosis, and a below-floor drain is never reported as an IFP outcome
// violation. The Makefile's ci target runs this for a short -fuzztime as
// a robustness smoke.
func FuzzFleetEvents(f *testing.F) {
	for seed := uint64(1); seed <= 4; seed++ {
		f.Add(seed, uint8(seed), uint8(seed))
	}
	policies := []string{"Baseline", "Timeout", "MonNR-All", "AWG"}
	f.Fuzz(func(t *testing.T, seed uint64, devs, polIdx uint8) {
		numDevs := 2 + int(devs)%3 // 2..4 devices
		policy := policies[int(polIdx)%len(policies)]
		// floor 1: random schedules may strip the fleet to a single device
		// but never drain it; the drain path has its own deterministic test.
		plane := fleet.Random(seed, numDevs, 1, 10_000, 60_000)
		if err := plane.Validate(numDevs); err != nil {
			t.Fatalf("generated plane invalid: %v", err)
		}
		wls := make([]sim.Config, numDevs)
		for i := range wls {
			bench := "SPM_G"
			if i%2 == 1 {
				bench = "TB_LG"
			}
			wls[i] = tinyWorkload(policy, bench, uint64(i+1))
		}
		cfg := fleet.Config{
			Devices:         numDevs,
			MinDevices:      1,
			Workloads:       wls,
			Plane:           plane,
			CheckpointEvery: 10_000,
			FleetBudget:     30_000_000,
		}
		r, err := fleet.New(cfg).Run()
		if err != nil {
			t.Fatalf("fleet run: %v", err)
		}
		for _, v := range r.Violations {
			t.Errorf("SLO violation: %s", v)
		}
		if t.Failed() {
			t.Logf("fleet log:\n%s", r)
		}
	})
}
