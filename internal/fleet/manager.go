// Package fleet scales the single-machine model out to a fleet: K
// gpu.Machine devices multiplexing workloads under one deterministic
// session, fronted by the Manager/Injectable pair of interfaces that
// fleet-health services (Navarch-style node managers) expose, and churned
// by a fleet-level fault plane injecting seeded XID-style health events —
// device-fell-off-bus, thermal throttle, uncorrectable ECC.
//
// The layer's point is the paper's invariant at datacenter scale: a
// policy that guarantees independent forward progress of work-groups
// should survive device churn — mid-kernel work-groups migrate off a lost
// device (checkpoint restore + live-state transplant + response-log
// replay) and the run still completes — while Baseline-style busy-wait
// policies hang and must be *diagnosed*, not merely time out. The SLO
// checker in slo.go promotes fault.CheckOutcome to that fleet contract.
package fleet

import (
	"awgsim/internal/event"
)

// XID codes health events carry, matching the NVIDIA XID numbering fleet
// managers key their remediation playbooks on. Events with no XID
// equivalent (thermal derate, device restore) carry XIDNone.
const (
	XIDNone         uint64 = 0
	XIDDoubleBitECC uint64 = 48 // uncorrectable double-bit ECC error
	XIDFellOffBus   uint64 = 79 // device no longer responds on the bus
)

// DeviceInfo is a device's static identity plus its current placement:
// which workloads the fleet scheduler has homed on it.
type DeviceInfo struct {
	ID        int
	Workloads []int // live workload ids homed here, ascending
}

// DeviceHealth is a device's instantaneous health word.
type DeviceHealth struct {
	OnBus        bool // responds on the bus (false after XID 79 until restored)
	ThermalScale int  // clock derate factor; 1 = nominal frequency
	ECCEvents    int  // uncorrectable ECC events observed so far
}

// HealthEvent is one entry of the fleet's health-event log: what happened,
// to which device, at which fleet cycle — the record CollectHealthEvents
// drains and remediation (migration, drain) is keyed on.
type HealthEvent struct {
	At     event.Cycle
	Device int
	XID    uint64 // XIDNone for non-XID events
	Kind   Kind
	Detail string
}

// Manager is the read side of a fleet-health service: enumerate devices,
// inspect their health, and drain the health-event stream. The Fleet
// implements it; a hardware deployment would back the same interface with
// the node manager's device plugin.
type Manager interface {
	Initialize() error
	Shutdown() error
	GetDeviceCount() (int, error)
	GetDeviceInfo(device int) (DeviceInfo, error)
	GetDeviceHealth(device int) (DeviceHealth, error)
	CollectHealthEvents() []HealthEvent
}

// Injectable extends Manager with deterministic health-event injection —
// the testing backend: schedule an XID, a thermal derate, or a memory
// fault at an exact fleet cycle before the run starts. Injected events
// merge into the fault plane's schedule, so an injected run replays
// bit-identically.
type Injectable interface {
	Manager

	// InjectXIDHealthEventAt schedules an XID on a device: XIDFellOffBus
	// becomes a DeviceLoss event, XIDDoubleBitECC an ECCError over one page.
	InjectXIDHealthEventAt(device int, xid uint64, at event.Cycle) error
	// InjectThermalHealthEventAt schedules a clock derate to the given
	// scale factor (1 clears the throttle).
	InjectThermalHealthEventAt(device int, scale int, at event.Cycle) error
	// InjectMemoryHealthEventAt schedules an uncorrectable ECC fault over a
	// page range.
	InjectMemoryHealthEventAt(device int, page uint64, pages int, at event.Cycle) error
}
