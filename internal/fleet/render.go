package fleet

import (
	"fmt"
	"strings"
)

// String renders the full fleet run — health-event log, migration log,
// per-workload outcomes, SLO violations — in a deterministic, integer-only
// form: it is what the fleet experiment's worked example prints and what
// the determinism tests compare byte-for-byte.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet run: plane=%s fleet-cycles=%d degraded=%v\n", r.Plane, r.FleetCycles, r.Degraded)
	if len(r.Events) > 0 {
		b.WriteString("health events:\n")
		for _, e := range r.Events {
			fmt.Fprintf(&b, "  [%12d] dev%d %-16s xid=%-2d %s\n", e.At, e.Device, e.Kind, e.XID, e.Detail)
		}
	}
	if len(r.Migrations) > 0 {
		b.WriteString("migrations:\n")
		for _, m := range r.Migrations {
			fmt.Fprintf(&b, "  [%12d] wl%d dev%d->dev%d (%s): rewound %d local cycles, paused %d\n",
				m.At, m.Workload, m.From, m.To, m.Cause, m.LostCycles, m.Pause)
		}
	}
	b.WriteString("workloads:\n")
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "  wl%d %s/%s dev%d: %s", w.ID, w.Result.Benchmark, w.Result.Policy, w.Device, w.status())
		fmt.Fprintf(&b, " (local %d cycles, %d/%d WGs, %d migrations, %d rewinds, %d cycles lost)\n",
			w.Result.Cycles, w.Result.Completed, w.Result.Completed+unfinished(w), w.Migrations, w.Recoveries, w.LostCycles)
	}
	if len(r.Violations) > 0 {
		b.WriteString("SLO violations:\n")
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	} else {
		b.WriteString("SLO violations: none\n")
	}
	return b.String()
}

func (w WorkloadResult) status() string {
	switch {
	case w.Drained:
		return fmt.Sprintf("drained at fleet %d", w.DoneAt)
	case w.Err != nil:
		return fmt.Sprintf("failed (%v)", w.Err)
	case w.Result.Deadlocked && w.Result.Diagnosis != nil:
		return fmt.Sprintf("deadlocked (%s) at fleet %d", w.Result.Diagnosis.Reason, w.DoneAt)
	case w.Result.Deadlocked:
		return fmt.Sprintf("deadlocked at fleet %d", w.DoneAt)
	default:
		return fmt.Sprintf("completed at fleet %d", w.DoneAt)
	}
}

func unfinished(w WorkloadResult) int {
	if w.Result.Diagnosis != nil {
		return w.Result.Diagnosis.Total - w.Result.Diagnosis.Completed
	}
	return 0
}
