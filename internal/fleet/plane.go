package fleet

import (
	"fmt"
	"strings"

	"awgsim/internal/event"
)

// Kind classifies a fleet-plane health event.
type Kind int

const (
	// DeviceLoss: the device falls off the bus (XID 79). Its machine state
	// is unrecoverable; live workloads migrate from their last checkpoint
	// to surviving devices, or the fleet drains below the capacity floor.
	DeviceLoss Kind = iota
	// DeviceRestore: a lost device rejoins the bus at nominal frequency;
	// the fleet rebalances one workload onto it.
	DeviceRestore
	// ThermalThrottle: the device's clocks derate by Event.Scale (CUs pace
	// slower, the CP stretches its firmware cadence). Scale 1 clears.
	ThermalThrottle
	// ECCError: an uncorrectable ECC fault poisons Event.Pages pages from
	// Event.Page (XID 48); affected workloads retire the range and rewind
	// to their last checkpoint.
	ECCError
)

func (k Kind) String() string {
	switch k {
	case DeviceLoss:
		return "device-loss"
	case DeviceRestore:
		return "device-restore"
	case ThermalThrottle:
		return "thermal-throttle"
	case ECCError:
		return "ecc-error"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled health event on the fleet plane.
type Event struct {
	At     event.Cycle // fleet cycle (not any workload's local clock)
	Kind   Kind
	Device int

	Scale int // ThermalThrottle: derate factor, >= 1 (1 clears)

	Page  uint64 // ECCError: first faulted page
	Pages int    // ECCError: faulted page count, >= 1
}

// Schedule is a named, seed-addressable sequence of fleet health events,
// time-ordered on the fleet clock.
type Schedule struct {
	Name string
	// Seed is the generator seed for Random schedules (zero for scripted
	// ones); Validate errors carry it so a failing schedule is
	// reproducible from the message alone.
	Seed   uint64
	Events []Event
}

func (s Schedule) String() string {
	kinds := make([]string, len(s.Events))
	for i, e := range s.Events {
		kinds[i] = e.Kind.String()
	}
	return fmt.Sprintf("%s(%s)", s.label(), strings.Join(kinds, ","))
}

// label names the schedule in errors, with the generator seed when it has
// one, so "which schedule broke" survives copy-paste.
func (s Schedule) label() string {
	if s.Seed == 0 {
		return s.Name
	}
	return fmt.Sprintf("%s[seed=%d]", s.Name, s.Seed)
}

// Validate checks the schedule against a fleet of numDevices devices:
// devices in range, events time-ordered at positive cycles, loss/restore
// correctly paired per device, parameters in range. Errors name the
// schedule (with seed) and the offending event index.
func (s Schedule) Validate(numDevices int) error {
	if numDevices < 1 {
		return fmt.Errorf("fleet: %s: no devices", s.label())
	}
	onBus := make([]bool, numDevices)
	for i := range onBus {
		onBus[i] = true
	}
	var prev event.Cycle
	for i, e := range s.Events {
		if e.Device < 0 || e.Device >= numDevices {
			return fmt.Errorf("fleet: %s event %d: device %d out of range [0,%d)", s.label(), i, e.Device, numDevices)
		}
		if e.At == 0 {
			return fmt.Errorf("fleet: %s event %d: at cycle 0; health events must land after launch", s.label(), i)
		}
		if e.At < prev {
			return fmt.Errorf("fleet: %s event %d: time travel (%d after %d)", s.label(), i, e.At, prev)
		}
		prev = e.At
		switch e.Kind {
		case DeviceLoss:
			if !onBus[e.Device] {
				return fmt.Errorf("fleet: %s event %d: device %d lost twice", s.label(), i, e.Device)
			}
			onBus[e.Device] = false
		case DeviceRestore:
			if onBus[e.Device] {
				return fmt.Errorf("fleet: %s event %d: device %d restored but never lost", s.label(), i, e.Device)
			}
			onBus[e.Device] = true
		case ThermalThrottle:
			if e.Scale < 1 {
				return fmt.Errorf("fleet: %s event %d: thermal scale %d < 1", s.label(), i, e.Scale)
			}
		case ECCError:
			if e.Pages < 1 {
				return fmt.Errorf("fleet: %s event %d: ECC range of %d pages", s.label(), i, e.Pages)
			}
		default:
			return fmt.Errorf("fleet: %s event %d: unknown kind %d", s.label(), i, int(e.Kind))
		}
	}
	return nil
}

// Scripted returns the canonical hand-written churn schedules for a fleet
// of numDevices (>= 2) devices, with the churn window starting around
// base fleet cycles. Together they cover every event kind, both migration
// flavors (loss-driven eviction and restore-driven rebalance), and
// compound churn; none dips below two surviving devices.
func Scripted(numDevices int, base event.Cycle) []Schedule {
	last := numDevices - 1
	return []Schedule{
		// No plane events: the multiplexing-only control.
		{Name: "steady"},
		// One device falls off the bus mid-kernel and never returns: the
		// canonical migration-off-a-lost-device schedule.
		{Name: "single-loss", Events: []Event{
			{At: 3 * base, Kind: DeviceLoss, Device: last},
		}},
		// Loss then restore: eviction out, rebalance back.
		{Name: "loss-restore", Events: []Event{
			{At: 3 * base, Kind: DeviceLoss, Device: last},
			{At: 9 * base, Kind: DeviceRestore, Device: last},
		}},
		// A loss wave rolls across two devices, each restored before the
		// next goes down.
		{Name: "rolling", Events: []Event{
			{At: 2 * base, Kind: DeviceLoss, Device: 0},
			{At: 5 * base, Kind: DeviceRestore, Device: 0},
			{At: 7 * base, Kind: DeviceLoss, Device: 1},
			{At: 10 * base, Kind: DeviceRestore, Device: 1},
		}},
		// Thermal derates sweep the fleet; one clears, one persists.
		{Name: "thermal-wave", Events: []Event{
			{At: 2 * base, Kind: ThermalThrottle, Device: 0, Scale: 3},
			{At: 4 * base, Kind: ThermalThrottle, Device: 1, Scale: 2},
			{At: 8 * base, Kind: ThermalThrottle, Device: 0, Scale: 1},
		}},
		// Uncorrectable ECC on two devices: poison, retire, rewind.
		{Name: "ecc-scrub", Events: []Event{
			{At: 3 * base, Kind: ECCError, Device: 0, Page: 0, Pages: 4},
			{At: 6 * base, Kind: ECCError, Device: 1, Page: 4, Pages: 4},
		}},
		// Every kind at once: throttle, loss, ECC, late restore.
		{Name: "mixed", Events: []Event{
			{At: 2 * base, Kind: ThermalThrottle, Device: 0, Scale: 2},
			{At: 4 * base, Kind: DeviceLoss, Device: last},
			{At: 6 * base, Kind: ECCError, Device: 1, Page: 0, Pages: 2},
			{At: 10 * base, Kind: DeviceRestore, Device: last},
		}},
		// Two concurrent holes in the fleet (needs numDevices >= 4 to keep
		// two survivors).
		{Name: "double-loss", Events: []Event{
			{At: 3 * base, Kind: DeviceLoss, Device: last},
			{At: 5 * base, Kind: DeviceLoss, Device: last - 1},
			{At: 9 * base, Kind: DeviceRestore, Device: last},
		}},
	}
}

// Random generates a seed-addressable random churn schedule: a splitmix64
// stream drives event kinds, devices, and timestamps across [base,
// base+span). The generator tracks bus membership so the schedule always
// validates and never leaves fewer than floor devices on the bus (the
// fleet never drains under a Random schedule). Identical inputs yield
// identical schedules.
func Random(seed uint64, numDevices, floor int, base, span event.Cycle) Schedule {
	s := Schedule{Name: fmt.Sprintf("rand-%d", seed), Seed: seed}
	state := seed
	if span == 0 {
		span = 1
	}
	if floor < 1 {
		floor = 1
	}
	n := 4 + int(splitmix(&state)%5) // 4..8 events
	onBus := make([]bool, numDevices)
	for i := range onBus {
		onBus[i] = true
	}
	numOn := numDevices
	at := base
	// Same clamp as fault.Random: when span < n the divisor would truncate
	// to 1 and every event would land at exactly base. A floor of 2 keeps a
	// 0-or-1 cycle spread; unchanged whenever span >= n.
	div := span/event.Cycle(n) + 1
	if div < 2 {
		div = 2
	}
	for i := 0; i < n; i++ {
		at += event.Cycle(splitmix(&state) % uint64(div))
		switch splitmix(&state) % 4 {
		case 0: // lose a random on-bus device, keeping the floor
			if numOn <= floor {
				continue
			}
			k := int(splitmix(&state) % uint64(numDevices))
			for !onBus[k] {
				k = (k + 1) % numDevices
			}
			onBus[k] = false
			numOn--
			s.Events = append(s.Events, Event{At: at, Kind: DeviceLoss, Device: k})
		case 1: // restore a random lost device
			if numOn == numDevices {
				continue
			}
			k := int(splitmix(&state) % uint64(numDevices))
			for onBus[k] {
				k = (k + 1) % numDevices
			}
			onBus[k] = true
			numOn++
			s.Events = append(s.Events, Event{At: at, Kind: DeviceRestore, Device: k})
		case 2: // derate a random device (or clear it)
			s.Events = append(s.Events, Event{
				At: at, Kind: ThermalThrottle,
				Device: int(splitmix(&state) % uint64(numDevices)),
				Scale:  1 + int(splitmix(&state)%3),
			})
		default: // poison a small page range
			s.Events = append(s.Events, Event{
				At: at, Kind: ECCError,
				Device: int(splitmix(&state) % uint64(numDevices)),
				Page:   splitmix(&state) % 16,
				Pages:  1 + int(splitmix(&state)%4),
			})
		}
	}
	return s
}

// splitmix advances a splitmix64 state and returns the next value — the
// same generator the machine's jitter stream and fault.Random use, so
// fleet randomness is deterministic and seed-addressable.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	x := *state
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
