package fleet_test

import (
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"awgsim/internal/event"
	"awgsim/internal/fault"
	"awgsim/internal/fleet"
	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
	"awgsim/internal/metrics"
	"awgsim/internal/sim"
)

// The Fleet is the reference Injectable (and therefore Manager) backend.
var _ fleet.Injectable = (*fleet.Fleet)(nil)

// tinyWorkload is a small oversubscribed simulation that finishes in a few
// hundred thousand cycles under IFP policies and deadlocks (diagnosed)
// under Baseline.
func tinyWorkload(policy, bench string, seed uint64) sim.Config {
	gcfg := gpu.DefaultConfig()
	gcfg.NumCUs = 2
	gcfg.MaxWGsPerCU = 4
	gcfg.ProgressWindow = 100_000
	p := kernels.DefaultParams()
	p.Groups = gcfg.NumCUs
	p.NumWGs = 2 * gcfg.NumCUs * gcfg.MaxWGsPerCU // oversubscribed 2x
	p.Iters = 3
	return sim.Config{
		Benchmark:   bench,
		Policy:      policy,
		GPU:         gcfg,
		Params:      p,
		CycleBudget: 5_000_000,
		Seed:        seed,
	}
}

func tinyFleet(policy string, plane fleet.Schedule) fleet.Config {
	return fleet.Config{
		Devices:    4,
		MinDevices: 2,
		Workloads: []sim.Config{
			tinyWorkload(policy, "SPM_G", 1),
			tinyWorkload(policy, "TB_LG", 2),
			tinyWorkload(policy, "SPM_G", 3),
			tinyWorkload(policy, "TB_LG", 4),
		},
		Plane:           plane,
		CheckpointEvery: 10_000,
		FleetBudget:     20_000_000,
	}
}

func run(t *testing.T, cfg fleet.Config) *fleet.Result {
	t.Helper()
	r, err := fleet.New(cfg).Run()
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	return r
}

func TestSteadyFleetCompletes(t *testing.T) {
	r := run(t, tinyFleet("AWG", fleet.Schedule{Name: "steady"}))
	if r.Degraded || len(r.Violations) != 0 {
		t.Fatalf("steady AWG fleet: degraded=%v violations=%v", r.Degraded, r.Violations)
	}
	for _, w := range r.Workloads {
		if w.Err != nil || w.Result.Deadlocked {
			t.Fatalf("workload %d: err=%v deadlocked=%v", w.ID, w.Err, w.Result.Deadlocked)
		}
	}
}

// TestMigrationMidWaitWakesOnce is the cross-device single-home test: the
// single-loss plane fires while the oversubscribed workload's WGs are deep
// in synchronization waits, so the victim workload migrates mid-wait. The
// transplant restores the checkpoint (waiter state re-homed through the
// syncmon/CP transfer paths plus response-log replay) on the surviving
// device; if any waiter were left double-homed it would wake twice and
// corrupt the producer/consumer counters, which the post-run functional
// verification (run by Session.Finish for every completed workload)
// catches. The test therefore requires: a migration actually happened off
// the lost device, every workload completed verified, and the migration
// log shows a single coherent home chain per workload.
func TestMigrationMidWaitWakesOnce(t *testing.T) {
	plane := fleet.Scripted(4, 5_000)[1] // single-loss: device 3 at cycle 15k
	r := run(t, tinyFleet("AWG", plane))
	if len(r.Migrations) == 0 {
		t.Fatalf("single-loss plane produced no migration:\n%s", r)
	}
	if r.Degraded || len(r.Violations) != 0 {
		t.Fatalf("degraded=%v violations=%v", r.Degraded, r.Violations)
	}
	for _, w := range r.Workloads {
		if w.Err != nil {
			t.Errorf("workload %d failed verification after migration: %v", w.ID, w.Err)
		}
		if w.Result.Deadlocked {
			t.Errorf("workload %d deadlocked: %v", w.ID, w.Result.Diagnosis)
		}
	}
	// Each workload's migrations chain: it leaves the device it was on and
	// lands somewhere else — never two homes at once.
	last := map[int]int{}
	for _, m := range r.Migrations {
		if m.From == m.To {
			t.Errorf("migration to the same device: %+v", m)
		}
		if prev, ok := last[m.Workload]; ok && m.From != prev {
			t.Errorf("workload %d home chain broken: migrated from dev%d but last landed on dev%d", m.Workload, m.From, prev)
		}
		last[m.Workload] = m.To
	}
	for wl, dev := range last {
		if got := r.Workloads[wl].Device; got != dev {
			t.Errorf("workload %d final home dev%d, migration log says dev%d", wl, got, dev)
		}
	}
}

// TestFleetDeterminism renders the same churn-heavy fleet twice on
// separate goroutines (the experiment pool does exactly this) and demands
// byte-identical output — the fleet loop must stay deterministic at
// GOMAXPROCS >= 2.
func TestFleetDeterminism(t *testing.T) {
	if prev := runtime.GOMAXPROCS(0); prev < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(prev)
	}
	cfg := func() fleet.Config {
		c := tinyFleet("AWG", fleet.Scripted(4, 5_000)[6]) // mixed: throttle+loss+ECC+restore
		c.DeviceFaults = make([]fault.Schedule, c.Devices)
		for d := range c.DeviceFaults {
			c.DeviceFaults[d] = fault.Random(uint64(d+1), 2, 5_000, 40_000)
		}
		c.SLO.StallWindow = 5_000_000
		return c
	}
	out := make([]string, 2)
	res := make([]*fleet.Result, 2)
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := fleet.New(cfg()).Run()
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			res[i] = r
			out[i] = r.String()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if out[0] != out[1] {
		t.Fatalf("fleet renders diverged:\n--- run 0 ---\n%s\n--- run 1 ---\n%s", out[0], out[1])
	}
	if !reflect.DeepEqual(res[0].Events, res[1].Events) || !reflect.DeepEqual(res[0].Migrations, res[1].Migrations) {
		t.Fatal("fleet logs diverged structurally")
	}
}

// TestDrainBelowFloor loses three of four devices against a floor of two:
// the fleet must degrade cleanly — every live workload stopped with a
// structured fleet-drain diagnosis, no deadlock, no undiagnosed drain.
func TestDrainBelowFloor(t *testing.T) {
	blackout := fleet.Schedule{Name: "blackout", Events: []fleet.Event{
		{At: 15_000, Kind: fleet.DeviceLoss, Device: 3},
		{At: 20_000, Kind: fleet.DeviceLoss, Device: 2},
		{At: 25_000, Kind: fleet.DeviceLoss, Device: 1},
	}}
	r := run(t, tinyFleet("AWG", blackout))
	if !r.Degraded {
		t.Fatalf("fleet survived below its floor:\n%s", r)
	}
	for _, v := range r.Violations {
		if v.Kind == fleet.ViolationDrain {
			t.Errorf("undiagnosed drain: %s", v)
		}
		if v.Kind == fleet.ViolationOutcome {
			t.Errorf("drain charged as an IFP violation: %s", v)
		}
	}
	drained := 0
	for _, w := range r.Workloads {
		if !w.Drained {
			continue
		}
		drained++
		if w.Result.Diagnosis == nil || w.Result.Diagnosis.Reason != metrics.ReasonFleetDrain {
			t.Errorf("workload %d drained without a fleet-drain diagnosis: %+v", w.ID, w.Result.Diagnosis)
		}
	}
	if drained == 0 {
		t.Fatalf("no workload drained:\n%s", r)
	}
}

// TestBaselineDiagnosedUnderChurn: the non-IFP control hangs under
// oversubscription, and the fleet must report it diagnosed — not starve
// the SLO checker or wedge the loop.
func TestBaselineDiagnosedUnderChurn(t *testing.T) {
	plane := fleet.Scripted(4, 5_000)[1] // single-loss
	cfg := tinyFleet("Baseline", plane)
	r := run(t, cfg)
	deadlocked := 0
	for _, w := range r.Workloads {
		if w.Result.Deadlocked {
			deadlocked++
			if w.Result.Diagnosis == nil {
				t.Errorf("workload %d deadlocked without a diagnosis", w.ID)
			}
		}
	}
	if deadlocked == 0 {
		t.Fatalf("oversubscribed Baseline fleet completed — the control is broken:\n%s", r)
	}
	for _, v := range r.Violations {
		if v.Kind == fleet.ViolationOutcome {
			t.Errorf("diagnosed Baseline deadlock flagged as outcome violation: %s", v)
		}
	}
}

func TestManagerSurface(t *testing.T) {
	f := fleet.New(tinyFleet("AWG", fleet.Schedule{Name: "steady"}))
	if err := f.InjectThermalHealthEventAt(0, 2, 12_000); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectXIDHealthEventAt(3, fleet.XIDFellOffBus, 18_000); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectMemoryHealthEventAt(1, 0, 2, 22_000); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectXIDHealthEventAt(0, 7, 1); err == nil {
		t.Fatal("unknown XID accepted")
	}
	n, err := f.GetDeviceCount()
	if err != nil || n != 4 {
		t.Fatalf("GetDeviceCount = %d, %v", n, err)
	}
	info, err := f.GetDeviceInfo(0)
	if err != nil || len(info.Workloads) != 1 || info.Workloads[0] != 0 {
		t.Fatalf("GetDeviceInfo(0) = %+v, %v", info, err)
	}
	h, err := f.GetDeviceHealth(3)
	if err != nil || !h.OnBus || h.ThermalScale != 1 {
		t.Fatalf("GetDeviceHealth(3) = %+v, %v", h, err)
	}
	if _, err := f.GetDeviceInfo(9); err == nil {
		t.Fatal("out-of-range device accepted")
	}
	r, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
	if err := f.InjectThermalHealthEventAt(0, 2, 99_000); err == nil {
		t.Fatal("injection after run accepted")
	}
	// All three injections surfaced as health events, in time order.
	evs := f.CollectHealthEvents()
	if len(evs) != len(r.Events) {
		t.Fatalf("collected %d events, result has %d", len(evs), len(r.Events))
	}
	if len(f.CollectHealthEvents()) != 0 {
		t.Fatal("second collection not empty")
	}
	var kinds []fleet.Kind
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	want := []fleet.Kind{fleet.ThermalThrottle, fleet.DeviceLoss, fleet.ECCError}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("health-event kinds %v, want %v", kinds, want)
	}
	health, err := f.GetDeviceHealth(3)
	if err != nil || health.OnBus {
		t.Fatalf("device 3 still on bus after XID 79: %+v, %v", health, err)
	}
	if len(r.Migrations) == 0 {
		t.Fatalf("injected device loss migrated nothing:\n%s", r)
	}
	if err := f.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneValidateErrorsCarrySeedAndIndex(t *testing.T) {
	s := fleet.Schedule{Name: "rand-9", Seed: 9, Events: []fleet.Event{
		{At: 100, Kind: fleet.DeviceLoss, Device: 0},
		{At: 200, Kind: fleet.DeviceLoss, Device: 0}, // lost twice
	}}
	err := s.Validate(2)
	if err == nil {
		t.Fatal("double loss validated")
	}
	for _, want := range []string{"seed=9", "event 1", "rand-9"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	cases := []fleet.Schedule{
		{Name: "dev", Events: []fleet.Event{{At: 1, Kind: fleet.DeviceLoss, Device: 5}}},
		{Name: "zero", Events: []fleet.Event{{At: 0, Kind: fleet.DeviceLoss, Device: 0}}},
		{Name: "order", Events: []fleet.Event{{At: 9, Kind: fleet.ThermalThrottle, Device: 0, Scale: 2}, {At: 3, Kind: fleet.ThermalThrottle, Device: 0, Scale: 1}}},
		{Name: "scale", Events: []fleet.Event{{At: 1, Kind: fleet.ThermalThrottle, Device: 0}}},
		{Name: "pages", Events: []fleet.Event{{At: 1, Kind: fleet.ECCError, Device: 0}}},
		{Name: "restore", Events: []fleet.Event{{At: 1, Kind: fleet.DeviceRestore, Device: 0}}},
	}
	for _, c := range cases {
		if err := c.Validate(2); err == nil {
			t.Errorf("schedule %s validated", c.Name)
		} else if !strings.Contains(err.Error(), "event 0") && !strings.Contains(err.Error(), "event 1") {
			t.Errorf("schedule %s error %q names no event index", c.Name, err)
		}
	}
}

func TestRandomPlanesValidateAndRespectFloor(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		s := fleet.Random(seed, 4, 2, 10_000, 80_000)
		if s.Seed != seed {
			t.Fatalf("seed %d not recorded", seed)
		}
		if err := s.Validate(4); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		onBus := 4
		for _, e := range s.Events {
			switch e.Kind {
			case fleet.DeviceLoss:
				onBus--
			case fleet.DeviceRestore:
				onBus++
			}
			if onBus < 2 {
				t.Fatalf("seed %d dips below floor", seed)
			}
		}
	}
	a := fleet.Random(7, 4, 2, 10_000, 80_000)
	b := fleet.Random(7, 4, 2, 10_000, 80_000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Random not deterministic")
	}
}

// TestRandomShortSpanSpreads pins the same degenerate-schedule fix as
// fault.Random's: with span < n the old step divisor truncated to 1 and
// every churn event landed at exactly base. The clamped divisor keeps a
// 0-or-1 cycle gap per event.
func TestRandomShortSpanSpreads(t *testing.T) {
	// As in fault's test, a single seed may legitimately draw all-zero
	// gaps; the pin is on the population (the old code collapsed all 16).
	bursts := 0
	for seed := uint64(1); seed <= 16; seed++ {
		s := fleet.Random(seed, 4, 2, 1000, 3)
		if err := s.Validate(4); err != nil {
			t.Fatalf("seed %d: short-span schedule invalid: %v", seed, err)
		}
		ats := map[event.Cycle]bool{}
		for _, e := range s.Events {
			if e.At < 1000 || e.At > 1000+event.Cycle(8) {
				t.Fatalf("seed %d: event at %d outside the window", seed, e.At)
			}
			ats[e.At] = true
		}
		if len(ats) < 2 {
			bursts++
		}
	}
	if bursts > 3 {
		t.Errorf("%d/16 short-span seeds collapsed to a single timestamp", bursts)
	}
}

// TestScriptedPlanesValidate pins the scripted set: all validate on a
// 4-device fleet and every event kind is covered.
func TestScriptedPlanesValidate(t *testing.T) {
	scheds := fleet.Scripted(4, 10_000)
	if len(scheds) < 8 {
		t.Fatalf("only %d scripted schedules", len(scheds))
	}
	covered := map[fleet.Kind]bool{}
	for _, s := range scheds {
		if err := s.Validate(4); err != nil {
			t.Errorf("%v", err)
		}
		for _, e := range s.Events {
			covered[e.Kind] = true
		}
	}
	for _, k := range []fleet.Kind{fleet.DeviceLoss, fleet.DeviceRestore, fleet.ThermalThrottle, fleet.ECCError} {
		if !covered[k] {
			t.Errorf("no scripted schedule exercises %v", k)
		}
	}
}

// TestThermalAndECCUnderIFP drives the derate and ECC paths end to end:
// throttled pacing, CP cadence scaling, poison + rewind — and the IFP
// workloads must still complete verified.
func TestThermalAndECCUnderIFP(t *testing.T) {
	for _, policy := range []string{"Timeout", "AWG"} {
		for _, idx := range []int{4, 5} { // thermal-wave, ecc-scrub
			plane := fleet.Scripted(4, 5_000)[idx]
			r := run(t, tinyFleet(policy, plane))
			if len(r.Violations) != 0 {
				t.Errorf("%s under %s: %v", policy, plane.Name, r.Violations)
			}
			if idx == 5 {
				rewound := 0
				for _, w := range r.Workloads {
					rewound += w.Recoveries
				}
				if rewound == 0 {
					t.Errorf("%s under ecc-scrub rewound nothing:\n%s", policy, r)
				}
			}
		}
	}
}

// TestFleetBudgetDiagnosis: an absurdly small fleet budget must leave the
// unfinished workloads diagnosed with the fleet-budget reason, never
// hanging.
func TestFleetBudgetDiagnosis(t *testing.T) {
	cfg := tinyFleet("AWG", fleet.Schedule{Name: "steady"})
	cfg.FleetBudget = 30_000
	cfg.SLO.CompletionDeadline = 30_000
	r := run(t, cfg)
	for _, w := range r.Workloads {
		if w.Result.Deadlocked && (w.Result.Diagnosis == nil || w.Result.Diagnosis.Reason != metrics.ReasonFleetBudget) {
			t.Errorf("workload %d: wrong budget diagnosis %+v", w.ID, w.Result.Diagnosis)
		}
	}
}

// TestStarvationDetector arms a stall window small enough that Baseline's
// busy-wait hang trips it; the violation must name the workload before the
// run ends. (Baseline is not IFP, so the detector must NOT flag it — use
// Timeout with an impossible window instead to see the positive case on a
// completing policy, and Baseline to see the suppression.)
func TestStarvationDetector(t *testing.T) {
	cfg := tinyFleet("Baseline", fleet.Schedule{Name: "steady"})
	cfg.SLO.StallWindow = 20_000
	r := run(t, cfg)
	for _, v := range r.Violations {
		if v.Kind == fleet.ViolationStarvation {
			t.Errorf("starvation flagged on non-IFP Baseline: %s", v)
		}
	}
	// A 1-cycle stall window flags even healthy IFP runs between WG
	// completions — the detector's positive path.
	cfg = tinyFleet("AWG", fleet.Schedule{Name: "steady"})
	cfg.SLO.StallWindow = 1
	r = run(t, cfg)
	found := false
	for _, v := range r.Violations {
		if v.Kind == fleet.ViolationStarvation {
			found = true
		}
	}
	if !found {
		t.Fatal("1-cycle stall window tripped nothing")
	}
}

func TestConfigRejects(t *testing.T) {
	bad := []fleet.Config{
		{Devices: 0, Workloads: []sim.Config{tinyWorkload("AWG", "SPM_G", 1)}},
		{Devices: 2},
		{Devices: 2, MinDevices: 3, Workloads: []sim.Config{tinyWorkload("AWG", "SPM_G", 1)}},
		{Devices: 2, Workloads: []sim.Config{tinyWorkload("AWG", "SPM_G", 1)}, DeviceFaults: []fault.Schedule{{}}},
		{Devices: 2, Workloads: []sim.Config{{Benchmark: "SPM_G", Policy: "AWG", Faults: &fault.Schedule{}}}},
	}
	for i, cfg := range bad {
		if err := fleet.New(cfg).Initialize(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	var zero event.Cycle
	_ = zero
}
