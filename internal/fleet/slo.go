package fleet

import (
	"fmt"

	"awgsim/internal/event"
	"awgsim/internal/fault"
)

// SLO is the fleet's service-level contract for workloads under churn. It
// promotes the single-run IFP invariant (fault.CheckOutcome) to the fleet:
// an IFP-providing policy must keep making forward progress across
// migrations and complete within its deadline; a non-IFP policy may hang
// but must hang *diagnosed*; and a below-floor drain is only acceptable
// when every drained workload carries a structured diagnosis.
type SLO struct {
	// StallWindow arms the online starvation detector: an IFP workload
	// that completes no work-group for this many fleet cycles (excluding
	// migration/recovery pauses) is flagged as starving. 0 disables it —
	// each machine's own progress watchdog still runs on its local clock.
	StallWindow event.Cycle
	// CompletionDeadline is the fleet cycle by which IFP workloads must
	// complete. 0 means the fleet budget.
	CompletionDeadline event.Cycle
}

// Violation kinds.
const (
	// ViolationStarvation: the online detector saw an IFP workload complete
	// no WG for a full stall window.
	ViolationStarvation = "starvation"
	// ViolationOutcome: the workload's final result breaks the IFP
	// invariant (IFP policy deadlocked/failed, or a non-IFP policy hung
	// without a diagnosis).
	ViolationOutcome = "outcome"
	// ViolationDeadline: an IFP workload completed, but after its
	// completion deadline.
	ViolationDeadline = "deadline"
	// ViolationDrain: a drained workload carries no structured diagnosis —
	// the fleet stopped it without saying why.
	ViolationDrain = "undiagnosed-drain"
)

// Violation is one SLO breach, attributed to a workload.
type Violation struct {
	Workload  int
	Benchmark string
	Policy    string
	Kind      string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("workload %d (%s under %s): %s: %s", v.Workload, v.Benchmark, v.Policy, v.Kind, v.Detail)
}

// check applies the end-of-run half of the SLO to one finished workload.
// Drained workloads are exempt from the IFP outcome check — a clean
// below-floor drain is the contract working, not a violation — but must
// be diagnosed.
func (s SLO) check(w *workload, deadline event.Cycle) []Violation {
	var out []Violation
	v := func(kind, detail string) {
		out = append(out, Violation{
			Workload: w.id, Benchmark: w.res.Benchmark, Policy: w.res.Policy,
			Kind: kind, Detail: detail,
		})
	}
	if w.drained {
		if w.res.Diagnosis == nil {
			v(ViolationDrain, "drained below the capacity floor without a diagnosis")
		}
		return out
	}
	if err := fault.CheckOutcome(w.res.Policy, w.res, w.resErr); err != nil {
		v(ViolationOutcome, err.Error())
		return out
	}
	if fault.ProvidesIFP(w.res.Policy) && !w.res.Deadlocked && w.doneAt > deadline {
		v(ViolationDeadline, fmt.Sprintf("completed at fleet cycle %d, deadline %d", w.doneAt, deadline))
	}
	return out
}
