package fleet

import (
	"fmt"
	"sort"

	"awgsim/internal/cp"
	"awgsim/internal/event"
	"awgsim/internal/fault"
	"awgsim/internal/gpu"
	"awgsim/internal/metrics"
	"awgsim/internal/sim"
)

// Config describes one fleet run: K devices multiplexing the given
// workloads under a fault plane. Zero-valued knobs take the defaults
// below.
type Config struct {
	// Devices is the fleet size K.
	Devices int
	// MinDevices is the survivable-capacity floor: when churn leaves fewer
	// devices on the bus, the fleet drains cleanly (diagnosed stop on every
	// live workload) instead of limping or deadlocking. Default 1.
	MinDevices int

	// Workloads are the simulations to place, round-robin across devices.
	// Their Faults field must be nil — device-coupled fault schedules
	// arrive through DeviceFaults instead.
	Workloads []sim.Config

	// Plane is the fleet-level health-event schedule.
	Plane Schedule

	// DeviceFaults optionally couples a machine-level fault schedule (CU
	// loss, monitor degradation, CP jitter) to each device: a workload
	// experiences the schedule of whichever device hosts it. Sequence
	// numbers for every device's schedule are reserved at session
	// construction, so arming the home device at genesis and a target
	// device's tail after a migration lands on identical calendar
	// positions across runs. Nil, or exactly Devices entries.
	DeviceFaults []fault.Schedule

	// CheckpointEvery is the fleet-cycle cadence of checkpoint refreshes —
	// the bound on work lost to a migration or ECC rewind. Default 50_000.
	CheckpointEvery event.Cycle
	// FleetBudget caps the run in fleet cycles; live workloads at the cap
	// finish diagnosed with metrics.ReasonFleetBudget. Default 100_000_000.
	FleetBudget event.Cycle
	// MigrationPauseBase is the fixed fleet-cycle cost of a migration; the
	// transplanted state adds Snapshot.Bytes()/128 on top. Default 2_000.
	MigrationPauseBase event.Cycle
	// ECCRecoveryPause is the fleet-cycle cost of an ECC retire-and-rewind.
	// Default 2_000.
	ECCRecoveryPause event.Cycle

	// SLO is the fleet's service contract (see slo.go).
	SLO SLO
}

func (c *Config) fill() error {
	if c.Devices < 1 {
		return fmt.Errorf("fleet: %d devices", c.Devices)
	}
	if len(c.Workloads) == 0 {
		return fmt.Errorf("fleet: no workloads")
	}
	for i := range c.Workloads {
		if c.Workloads[i].Faults != nil {
			return fmt.Errorf("fleet: workload %d carries its own fault schedule; use DeviceFaults", i)
		}
	}
	if c.DeviceFaults != nil && len(c.DeviceFaults) != c.Devices {
		return fmt.Errorf("fleet: %d device fault schedules for %d devices", len(c.DeviceFaults), c.Devices)
	}
	if c.MinDevices == 0 {
		c.MinDevices = 1
	}
	if c.MinDevices > c.Devices {
		return fmt.Errorf("fleet: floor %d above fleet size %d", c.MinDevices, c.Devices)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 50_000
	}
	if c.FleetBudget == 0 {
		c.FleetBudget = 100_000_000
	}
	if c.MigrationPauseBase == 0 {
		c.MigrationPauseBase = 2_000
	}
	if c.ECCRecoveryPause == 0 {
		c.ECCRecoveryPause = 2_000
	}
	return nil
}

// Device is one fleet device: bus membership, thermal state, and the
// single-home container of the workloads placed on it. A workload id
// lives in exactly one device's workloads slice (its home); attach and
// detach are the only functions that move ids between homes.
type Device struct {
	id        int
	onBus     bool
	scale     int // thermal derate factor, 1 = nominal
	eccEvents int
	workloads []int // live workload ids homed here, ascending
}

// workload is one placed simulation and its fleet-side bookkeeping.
type workload struct {
	id   int
	sess *sim.Session
	m    *gpu.Machine
	dev  int // current home device

	pos event.Cycle // local-clock pacing position (RunTo target)
	acc event.Cycle // pacing remainder (fleet cycles not yet converted)

	pauseUntil event.Cycle // fleet cycle a migration/recovery pause ends
	ckpt       *gpu.Snapshot

	armed    []bool   // per device: fault block armed on this machine
	seqBases []uint64 // per device: first reserved engine seq of its block

	terminal bool
	drained  bool
	res      metrics.Result
	resErr   error
	doneAt   event.Cycle // fleet cycle the workload went terminal

	migrations int
	recoveries int
	lostCycles uint64 // local cycles rewound across migrations/recoveries

	lastCompleted  int
	lastProgressAt event.Cycle
	starving       bool
}

// Migration is one entry of the fleet's migration log.
type Migration struct {
	At         event.Cycle
	Workload   int
	From, To   int
	Cause      string // "device-loss" or "rebalance"
	LostCycles uint64 // local cycles rewound to the checkpoint
	Pause      event.Cycle
}

// WorkloadResult is one workload's outcome plus its churn history.
type WorkloadResult struct {
	ID         int
	Device     int // final home
	Result     metrics.Result
	Err        error
	DoneAt     event.Cycle
	Migrations int
	Recoveries int
	LostCycles uint64
	Drained    bool
}

// Result is one fleet run's outcome.
type Result struct {
	Plane       string // plane schedule label
	Degraded    bool   // drained below the capacity floor
	FleetCycles event.Cycle
	Events      []HealthEvent
	Migrations  []Migration
	Workloads   []WorkloadResult
	Violations  []Violation
}

// Fleet is the simulation of K devices under one fault plane. It
// implements Injectable (and therefore Manager). Drive it New →
// (optional Inject*At) → Run; Initialize and Shutdown are part of the
// Manager surface and Run calls them itself when the caller does not.
type Fleet struct {
	cfg  Config
	devs []*Device
	wls  []*workload

	plan     []Event
	planIdx  int
	injected []Event

	clock    event.Cycle
	degraded bool
	shut     bool

	initialized bool
	ran         bool

	events     []HealthEvent
	collected  int // prefix of events already drained by CollectHealthEvents
	migrations []Migration
	violations []Violation
}

// New builds an unstarted fleet from cfg.
func New(cfg Config) *Fleet { return &Fleet{cfg: cfg} }

// Initialize validates the configuration, constructs every workload's
// machine with its reserved fault-sequence blocks, places workloads
// round-robin, arms each home device's fault schedule, and takes the
// genesis checkpoints. Idempotent.
func (f *Fleet) Initialize() error {
	if f.initialized {
		return nil
	}
	if err := f.cfg.fill(); err != nil {
		return err
	}
	f.devs = make([]*Device, f.cfg.Devices)
	for i := range f.devs {
		f.devs[i] = &Device{id: i, onBus: true, scale: 1}
	}
	f.wls = make([]*workload, len(f.cfg.Workloads))
	for i, wcfg := range f.cfg.Workloads {
		w := &workload{id: i, armed: make([]bool, f.cfg.Devices), seqBases: make([]uint64, f.cfg.Devices)}
		// Reserve one engine-sequence block per device, sized by how many of
		// that device's fault events apply to this workload's policy.
		counts := make([]int, f.cfg.Devices)
		reserve := 0
		if f.cfg.DeviceFaults != nil {
			pol, err := sim.NewPolicy(wcfg.Policy)
			if err != nil {
				return fmt.Errorf("fleet: workload %d: %w", i, err)
			}
			for d := range counts {
				counts[d] = fault.CountApplicable(pol, f.cfg.DeviceFaults[d])
				reserve += counts[d]
			}
		}
		sess, err := sim.NewSessionReserving(wcfg, reserve)
		if err != nil {
			return fmt.Errorf("fleet: workload %d: %w", i, err)
		}
		w.sess, w.m = sess, sess.Machine()
		base := sess.SeqBase()
		for d := range counts {
			w.seqBases[d] = base
			base += uint64(counts[d])
		}
		w.m.SetResponseLogging(true)
		w.m.Prepare()
		home := i % f.cfg.Devices
		f.attach(f.devs[home], w)
		w.dev = home
		if f.cfg.DeviceFaults != nil {
			w.armed[home] = true
			if err := fault.ArmReserved(w.m, f.cfg.DeviceFaults[home], w.seqBases[home]); err != nil {
				return fmt.Errorf("fleet: workload %d on device %d: %w", i, home, err)
			}
		}
		w.ckpt = w.m.Snapshot()
		f.wls[i] = w
	}
	f.initialized = true
	return nil
}

// Shutdown finishes any still-live workloads (diagnosed as a fleet drain)
// and marks the fleet closed. Run calls it after a normal run, where it
// is a no-op on the already-terminal workloads. Idempotent.
func (f *Fleet) Shutdown() error {
	if f.shut {
		return nil
	}
	if f.initialized {
		for _, w := range f.wls {
			if w.terminal {
				continue
			}
			w.m.Halt(metrics.ReasonFleetDrain)
			w.drained = true
			f.finish(w)
		}
	}
	f.shut = true
	return nil
}

// GetDeviceCount reports the fleet size.
func (f *Fleet) GetDeviceCount() (int, error) {
	if err := f.Initialize(); err != nil {
		return 0, err
	}
	return f.cfg.Devices, nil
}

// GetDeviceInfo reports a device's identity and current placement.
func (f *Fleet) GetDeviceInfo(device int) (DeviceInfo, error) {
	if err := f.Initialize(); err != nil {
		return DeviceInfo{}, err
	}
	if device < 0 || device >= len(f.devs) {
		return DeviceInfo{}, fmt.Errorf("fleet: device %d out of range [0,%d)", device, len(f.devs))
	}
	d := f.devs[device]
	return DeviceInfo{ID: d.id, Workloads: append([]int(nil), d.workloads...)}, nil
}

// GetDeviceHealth reports a device's instantaneous health word.
func (f *Fleet) GetDeviceHealth(device int) (DeviceHealth, error) {
	if err := f.Initialize(); err != nil {
		return DeviceHealth{}, err
	}
	if device < 0 || device >= len(f.devs) {
		return DeviceHealth{}, fmt.Errorf("fleet: device %d out of range [0,%d)", device, len(f.devs))
	}
	d := f.devs[device]
	return DeviceHealth{OnBus: d.onBus, ThermalScale: d.scale, ECCEvents: d.eccEvents}, nil
}

// CollectHealthEvents drains the health events recorded since the last
// collection.
func (f *Fleet) CollectHealthEvents() []HealthEvent {
	out := append([]HealthEvent(nil), f.events[f.collected:]...)
	f.collected = len(f.events)
	return out
}

// InjectXIDHealthEventAt schedules an XID on a device before the run.
func (f *Fleet) InjectXIDHealthEventAt(device int, xid uint64, at event.Cycle) error {
	switch xid {
	case XIDFellOffBus:
		return f.inject(Event{At: at, Kind: DeviceLoss, Device: device})
	case XIDDoubleBitECC:
		return f.inject(Event{At: at, Kind: ECCError, Device: device, Pages: 1})
	}
	return fmt.Errorf("fleet: no injection for XID %d", xid)
}

// InjectThermalHealthEventAt schedules a clock derate (scale 1 clears).
func (f *Fleet) InjectThermalHealthEventAt(device int, scale int, at event.Cycle) error {
	return f.inject(Event{At: at, Kind: ThermalThrottle, Device: device, Scale: scale})
}

// InjectMemoryHealthEventAt schedules an uncorrectable ECC fault over a
// page range.
func (f *Fleet) InjectMemoryHealthEventAt(device int, page uint64, pages int, at event.Cycle) error {
	return f.inject(Event{At: at, Kind: ECCError, Device: device, Page: page, Pages: pages})
}

func (f *Fleet) inject(e Event) error {
	if f.ran {
		return fmt.Errorf("fleet: injection after the run started")
	}
	f.injected = append(f.injected, e)
	return nil
}

// Run drives the fleet to completion: paced slices of every live workload
// between plane-event/checkpoint boundaries, health events applied in
// schedule order, checkpoints refreshed, the SLO scanned. It returns the
// assembled Result; SLO violations are reported in it, not as an error.
// Run may be called once.
func (f *Fleet) Run() (*Result, error) {
	if f.ran {
		return nil, fmt.Errorf("fleet: Run called twice")
	}
	if err := f.Initialize(); err != nil {
		return nil, err
	}
	f.ran = true
	// Merge pre-run injections into the plane, keeping schedule order
	// stable for equal timestamps, and validate the merged plan.
	merged := f.cfg.Plane
	merged.Events = append(append([]Event(nil), merged.Events...), f.injected...)
	sort.SliceStable(merged.Events, func(i, j int) bool { return merged.Events[i].At < merged.Events[j].At })
	if err := merged.Validate(f.cfg.Devices); err != nil {
		return nil, err
	}
	f.plan = merged.Events

	for f.clock < f.cfg.FleetBudget && f.liveCount() > 0 && !f.degraded {
		next := f.nextBoundary()
		f.advanceAll(next - f.clock)
		f.clock = next
		f.applyPlaneEvents()
		if !f.degraded && f.clock%f.cfg.CheckpointEvery == 0 {
			f.refreshCheckpoints()
		}
		f.sloScan()
	}
	// Fleet budget exhausted with live workloads: finish them diagnosed.
	for _, w := range f.wls {
		if !w.terminal {
			w.m.Halt(metrics.ReasonFleetBudget)
			f.finish(w)
		}
	}
	if err := f.Shutdown(); err != nil {
		return nil, err
	}
	res := f.result()
	// Every workload is terminal and its checkpoints die with the fleet:
	// recycle the device machines' buffers for the next fleet in the sweep.
	for _, w := range f.wls {
		w.m.ReleaseBuffers()
	}
	return res, nil
}

// result assembles the final Result and runs the end-of-run SLO checks.
func (f *Fleet) result() *Result {
	deadline := f.cfg.SLO.CompletionDeadline
	if deadline == 0 {
		deadline = f.cfg.FleetBudget
	}
	r := &Result{
		Plane:       f.cfg.Plane.label(),
		Degraded:    f.degraded,
		FleetCycles: f.clock,
		Events:      f.events,
		Migrations:  f.migrations,
		Violations:  f.violations,
	}
	for _, w := range f.wls {
		r.Workloads = append(r.Workloads, WorkloadResult{
			ID: w.id, Device: w.dev, Result: w.res, Err: w.resErr,
			DoneAt: w.doneAt, Migrations: w.migrations, Recoveries: w.recoveries,
			LostCycles: w.lostCycles, Drained: w.drained,
		})
		r.Violations = append(r.Violations, f.cfg.SLO.check(w, deadline)...)
	}
	return r
}

func (f *Fleet) liveCount() int {
	n := 0
	for _, w := range f.wls {
		if !w.terminal {
			n++
		}
	}
	return n
}

func (f *Fleet) onBusCount() int {
	n := 0
	for _, d := range f.devs {
		if d.onBus {
			n++
		}
	}
	return n
}

// nextBoundary picks the next fleet cycle the loop must stop at: the next
// plane event, the next checkpoint tick, or the budget.
func (f *Fleet) nextBoundary() event.Cycle {
	next := f.cfg.FleetBudget
	if f.planIdx < len(f.plan) && f.plan[f.planIdx].At < next {
		next = f.plan[f.planIdx].At
	}
	if tick := (f.clock/f.cfg.CheckpointEvery + 1) * f.cfg.CheckpointEvery; tick < next {
		next = tick
	}
	return next
}

// advanceAll paces every live workload through one fleet-cycle slice. A
// device's local clocks advance at fleet rate divided by (resident
// workloads × thermal derate); the integer remainder carries in w.acc so
// no cycles are lost to rounding. Workloads advance in id order — the
// fleet loop runs on one goroutine and each machine keeps its own
// single-goroutine engine, so the interleaving is deterministic.
func (f *Fleet) advanceAll(slice event.Cycle) {
	for _, w := range f.wls {
		if w.terminal {
			continue
		}
		eff := slice
		if w.pauseUntil > f.clock {
			skip := w.pauseUntil - f.clock
			if skip > eff {
				skip = eff
			}
			eff -= skip
		}
		if eff == 0 {
			continue
		}
		d := f.devs[w.dev]
		div := event.Cycle(len(d.workloads) * d.scale)
		if div < 1 {
			div = 1
		}
		w.acc += eff
		adv := w.acc / div
		w.acc -= adv * div
		if adv == 0 {
			continue
		}
		w.pos += adv
		max := w.m.CycleLimit()
		if max != 0 && w.pos > max {
			w.pos = max
		}
		w.m.RunTo(w.pos)
		if w.m.Done() || w.m.Deadlocked() || w.m.Engine().BudgetExhausted() ||
			w.m.Engine().Pending() == 0 ||
			(max != 0 && w.pos == max) {
			f.finish(w)
		}
	}
}

// finish tears one workload down: classify and account the run, record
// when it ended on the fleet clock, and vacate its home.
func (f *Fleet) finish(w *workload) {
	w.res, w.resErr = w.sess.Finish()
	w.terminal = true
	w.doneAt = f.clock
	f.detach(f.devs[w.dev], w)
}

// applyPlaneEvents fires every plane event due at the current fleet
// cycle, in schedule order.
func (f *Fleet) applyPlaneEvents() {
	for f.planIdx < len(f.plan) && f.plan[f.planIdx].At <= f.clock {
		e := f.plan[f.planIdx]
		f.planIdx++
		if f.degraded {
			// The fleet already drained; remaining events are moot.
			continue
		}
		switch e.Kind {
		case DeviceLoss:
			f.loseDevice(e)
		case DeviceRestore:
			f.restoreDevice(e)
		case ThermalThrottle:
			f.throttleDevice(e)
		case ECCError:
			f.eccError(e)
		}
	}
}

// loseDevice takes a device off the bus: migrate its live workloads to
// survivors, or — below the capacity floor — drain the whole fleet
// cleanly.
func (f *Fleet) loseDevice(e Event) {
	d := f.devs[e.Device]
	d.onBus = false
	f.note(e, XIDFellOffBus, fmt.Sprintf("device %d fell off the bus (%d workloads resident)", d.id, len(d.workloads)))
	if f.onBusCount() < f.cfg.MinDevices {
		f.drain(e)
		return
	}
	victims := append([]int(nil), d.workloads...)
	for _, id := range victims {
		f.migrate(f.wls[id], f.pickTarget(d.id), "device-loss")
	}
}

// drain stops every live workload with a structured fleet-drain
// diagnosis: device churn left fewer than MinDevices on the bus, and a
// clean diagnosed stop beats a wedged fleet.
func (f *Fleet) drain(e Event) {
	f.degraded = true
	f.note(e, XIDNone, fmt.Sprintf("fleet below survivable floor (%d on bus < %d): draining %d live workloads",
		f.onBusCount(), f.cfg.MinDevices, f.liveCount()))
	for _, w := range f.wls {
		if w.terminal {
			continue
		}
		w.m.Halt(metrics.ReasonFleetDrain)
		w.drained = true
		f.finish(w)
	}
}

// restoreDevice brings a lost device back at nominal frequency and
// rebalances one workload onto it from the most-loaded device.
func (f *Fleet) restoreDevice(e Event) {
	d := f.devs[e.Device]
	d.onBus = true
	d.scale = 1
	f.note(e, XIDNone, fmt.Sprintf("device %d restored to the bus", d.id))
	var src *Device
	for _, c := range f.devs {
		if c.onBus && len(c.workloads) >= 2 && (src == nil || len(c.workloads) > len(src.workloads)) {
			src = c
		}
	}
	if src != nil {
		f.migrate(f.wls[src.workloads[len(src.workloads)-1]], d.id, "rebalance")
	}
}

// throttleDevice derates a device's clocks: resident workloads pace
// slower from the next slice, and monitor-family policies stretch their
// CP firmware cadence by the same factor.
func (f *Fleet) throttleDevice(e Event) {
	d := f.devs[e.Device]
	d.scale = e.Scale
	detail := fmt.Sprintf("device %d thermal derate x%d", d.id, d.scale)
	if d.scale == 1 {
		detail = fmt.Sprintf("device %d thermal throttle cleared", d.id)
	}
	f.note(e, XIDNone, detail)
	for _, id := range d.workloads {
		f.applyThermal(f.wls[id], d.scale)
	}
}

// eccError poisons the faulted page range on every resident workload,
// then retires the range by rewinding each to its last checkpoint — the
// corrupted values are never executed on, and the rewind re-executes from
// the pre-fault image.
func (f *Fleet) eccError(e Event) {
	d := f.devs[e.Device]
	d.eccEvents++
	seed := f.cfg.Plane.Seed ^ e.Page ^ uint64(e.At)<<16 ^ 0xecc0
	resident := append([]int(nil), d.workloads...)
	words := 0
	for _, id := range resident {
		w := f.wls[id]
		words += w.m.Mem().CorruptRange(e.Page, e.Pages, seed)
		f.rewind(w, d)
		w.pauseUntil = f.clock + f.cfg.ECCRecoveryPause
		w.recoveries++
	}
	f.note(e, XIDDoubleBitECC, fmt.Sprintf("device %d uncorrectable ECC: pages [%d,%d), %d words poisoned, %d workloads rewound",
		d.id, e.Page, e.Page+uint64(e.Pages), words, len(resident)))
}

// rewind restores a workload to its last checkpoint in place (same
// device), charging the lost local cycles and re-imposing the device's
// thermal state on the restored machine.
func (f *Fleet) rewind(w *workload, d *Device) {
	lost := w.pos - w.ckpt.Now()
	w.m.Restore(w.ckpt)
	w.pos = w.ckpt.Now()
	w.acc = 0
	w.lostCycles += uint64(lost)
	f.applyThermal(w, d.scale)
}

// migrate transplants a live workload onto the target device: restore the
// last checkpoint (the lost device's post-checkpoint state is gone with
// it), re-home the workload, re-impose the target's thermal state, arm
// the not-yet-fired tail of the target's device-fault schedule on its
// reserved sequence block, and immediately take a fresh checkpoint so
// later rewinds replay the same calendar. The transplant costs a pause
// proportional to the moved state.
func (f *Fleet) migrate(w *workload, target int, cause string) {
	from := w.dev
	lost := w.pos - w.ckpt.Now()
	w.m.Restore(w.ckpt)
	w.pos = w.ckpt.Now()
	w.acc = 0
	w.lostCycles += uint64(lost)
	f.detach(f.devs[from], w)
	f.attach(f.devs[target], w)
	w.dev = target
	t := f.devs[target]
	f.applyThermal(w, t.scale)
	if f.cfg.DeviceFaults != nil && !w.armed[target] {
		w.armed[target] = true
		// Validation already passed at genesis arming; the machine config is
		// unchanged, so an error here is unreachable.
		if err := fault.ArmReservedAfter(w.m, f.cfg.DeviceFaults[target], w.seqBases[target], w.m.Engine().Now()); err != nil {
			panic(fmt.Sprintf("fleet: arming device %d tail on workload %d: %v", target, w.id, err))
		}
	}
	w.ckpt = w.m.Snapshot()
	pause := f.cfg.MigrationPauseBase + event.Cycle(w.ckpt.Bytes()/128)
	w.pauseUntil = f.clock + pause
	w.migrations++
	f.migrations = append(f.migrations, Migration{
		At: f.clock, Workload: w.id, From: from, To: target,
		Cause: cause, LostCycles: uint64(lost), Pause: pause,
	})
}

// pickTarget chooses the least-loaded on-bus device other than exclude
// (ties to the lowest id).
func (f *Fleet) pickTarget(exclude int) int {
	best := -1
	for _, d := range f.devs {
		if !d.onBus || d.id == exclude {
			continue
		}
		if best == -1 || len(d.workloads) < len(f.devs[best].workloads) {
			best = d.id
		}
	}
	return best
}

// applyThermal imposes a device derate on a workload's command processor.
// Policies without monitor hardware have no CP; their derate is purely
// the pacing slowdown.
func (f *Fleet) applyThermal(w *workload, scale int) {
	if hw, ok := w.m.Policy().(interface{ CP() *cp.Processor }); ok {
		hw.CP().SetCadenceScale(scale)
	}
}

// refreshCheckpoints re-snapshots live workloads at the checkpoint
// cadence. Paused workloads are skipped — their state is unchanged since
// the snapshot the pause came from.
func (f *Fleet) refreshCheckpoints() {
	for _, w := range f.wls {
		if w.terminal || w.pauseUntil > f.clock {
			continue
		}
		w.ckpt = w.m.Snapshot()
	}
}

// sloScan runs the online starvation detector at each boundary.
func (f *Fleet) sloScan() {
	win := f.cfg.SLO.StallWindow
	if win == 0 {
		return
	}
	for _, w := range f.wls {
		if w.terminal || w.starving {
			continue
		}
		if c := w.m.CompletedWGs(); c > w.lastCompleted {
			w.lastCompleted = c
			w.lastProgressAt = f.clock
			continue
		}
		ref := w.lastProgressAt
		if w.pauseUntil > ref {
			ref = w.pauseUntil
		}
		if ref >= f.clock {
			// A pause is still running (or just ended at this boundary); the
			// stall clock restarts after it.
			continue
		}
		if f.clock-ref > win && fault.ProvidesIFP(f.cfg.Workloads[w.id].Policy) {
			w.starving = true
			f.violations = append(f.violations, Violation{
				Workload: w.id, Benchmark: f.cfg.Workloads[w.id].Benchmark, Policy: f.cfg.Workloads[w.id].Policy,
				Kind: ViolationStarvation,
				Detail: fmt.Sprintf("no WG completed for %d fleet cycles (window %d, %d/%d done)",
					f.clock-ref, win, w.lastCompleted, len(w.m.WGs())),
			})
		}
	}
}

// note appends one health event to the fleet log.
func (f *Fleet) note(e Event, xid uint64, detail string) {
	f.events = append(f.events, HealthEvent{At: f.clock, Device: e.Device, XID: xid, Kind: e.Kind, Detail: detail})
}

// attach homes a live workload on a device, keeping ids ascending. It and
// detach are the only mutators of Device.workloads (the single-home
// invariant awglint's waiterhome analyzer enforces for this package).
func (f *Fleet) attach(d *Device, w *workload) {
	i := sort.SearchInts(d.workloads, w.id)
	d.workloads = append(d.workloads, 0)
	copy(d.workloads[i+1:], d.workloads[i:])
	d.workloads[i] = w.id
}

// detach removes a workload from its home device.
func (f *Fleet) detach(d *Device, w *workload) {
	i := sort.SearchInts(d.workloads, w.id)
	if i < len(d.workloads) && d.workloads[i] == w.id {
		d.workloads = append(d.workloads[:i], d.workloads[i+1:]...)
	}
}
