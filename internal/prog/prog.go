// Package prog defines the register-machine program IR that WG kernels can
// be expressed in instead of Go closures. A Program is plain data — an
// address pool, a register count, and a flat op list — covering the whole
// gpu.Device surface (compute, loads/stores, the five atomics, SyncThreads,
// the policy-lowered waits and acquires) plus the control flow the
// HeteroSync-style kernels need: bounded loops and branches over registers,
// and per-WG launch-geometry constants (ID, group, rank).
//
// Because a Program is declarative data with no captured host state, the
// machine can execute it inline — a resumable frame (pc + register file)
// advanced directly in the response path, with no goroutine and no channel
// rendezvous per device operation — and snapshots copy the frame instead of
// replaying a response log. The same Program also runs unchanged against any
// gpu.Device through the interpreter adapter (gpu.ExecIRProgram), which is
// both the compatibility path and the differential-testing oracle: the two
// executions must issue an identical device-operation sequence.
//
// Operands are Src values: a register index or an int64 immediate. Memory
// operands are *pool indices* — the operand's value selects an address from
// Program.Pool — so address arithmetic stays in registers and a validated
// program can never touch an address outside its declared pool.
package prog

import "fmt"

// Scope mirrors gpu.Scope without importing it: the synchronization scope
// of a memory-op's variable. Local variables belong to the executing WG's
// scheduling group.
type Scope uint8

const (
	Global Scope = iota
	Local
)

// Cmp is the comparison OpBr applies between its two operands.
type Cmp uint8

const (
	EQ Cmp = iota
	NE
	LT
	LE
	GT
	GE
)

// Test applies the comparison.
func (c Cmp) Test(a, b int64) bool {
	switch c {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

func (c Cmp) String() string {
	switch c {
	case EQ:
		return "=="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	default:
		return ">="
	}
}

// Geom selects a launch-geometry constant for OpGeom.
type Geom uint8

const (
	GeomID Geom = iota // globally unique WG ID
	GeomNumWGs
	GeomWIsPerWG
	GeomGroup        // scheduling group (home CU)
	GeomGroupSize    // WGs sharing the group
	GeomIndexInGroup // rank within the group
	geomCount
)

// OpKind enumerates the IR's operations. Pure ops execute inside the
// interpreter with no simulated cost (they model the ALU work a real kernel
// interleaves between synchronization operations, which the closure path
// likewise executes for free between Device calls); device ops issue one
// simulated device operation each.
type OpKind uint8

const (
	// Pure register ops.
	OpMov  OpKind = iota // dst = A
	OpAdd                // dst = A + B
	OpSub                // dst = A - B
	OpMul                // dst = A * B
	OpDiv                // dst = A / B (B==0 yields 0)
	OpMod                // dst = A % B (B==0 yields 0)
	OpGeom               // dst = geometry constant selected by Geom
	OpJmp                // pc = Target
	OpBr                 // if Cmp(A, B) then pc = Target

	// Device ops. Memory operands (A of every op below except OpCompute)
	// are pool indices; Scope gives the variable's synchronization scope.
	OpCompute     // Compute(A) cycles; A <= 0 is a no-op
	OpLoad        // dst = Load(pool[A])
	OpStore       // Store(pool[A], B)
	OpAtomicAdd   // dst = AtomicAdd(var(A), B)
	OpAtomicExch  // dst = AtomicExch(var(A), B)
	OpAtomicCAS   // dst = AtomicCAS(var(A), cmp=B, swap=C)
	OpAtomicLoad  // dst = AtomicLoad(var(A))
	OpAtomicStore // AtomicStore(var(A), B)
	OpSyncThreads // intra-WG barrier
	OpAwaitEq     // dst = AwaitEq(var(A), B); Hint selects the backoff form
	OpAwaitGE     // dst = AwaitGE(var(A), B)
	OpAcquireExch // AcquireExch(var(A), locked=B, unlocked=C); Hint selects backoff
	OpAcquireCAS  // AcquireCAS(var(A), expect=B, new=C)
	opCount
)

func (k OpKind) String() string {
	names := [...]string{
		"mov", "add", "sub", "mul", "div", "mod", "geom", "jmp", "br",
		"compute", "load", "store",
		"atomic-add", "atomic-exch", "atomic-cas", "atomic-load", "atomic-store",
		"sync-threads", "await-eq", "await-ge", "acquire-exch", "acquire-cas",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// IsDevice reports whether the op issues a simulated device operation (as
// opposed to executing purely inside the interpreter).
func (k OpKind) IsDevice() bool { return k >= OpCompute && k < opCount }

// Src is one operand: a register (Reg >= 0) or an immediate (Reg < 0).
type Src struct {
	Reg int16
	Imm int64
}

// R makes a register operand.
func R(i int) Src { return Src{Reg: int16(i)} }

// Imm makes an immediate operand.
func Imm(v int64) Src { return Src{Reg: -1, Imm: v} }

// Op is one instruction. Field use depends on Kind (see the OpKind
// constants); unused fields are zero. Dst < 0 discards a device op's
// returned value.
type Op struct {
	Kind    OpKind
	Dst     int16
	A, B, C Src
	Scope   Scope
	Cmp     Cmp
	Geom    Geom
	Target  int32 // OpJmp/OpBr destination pc; len(Code) means "fall off the end"
	Hint    bool  // software-backoff wait hint (OpAwaitEq, OpAcquireExch)
}

// Program is one kernel body: every WG executes the same code against its
// own register file, branching on geometry constants where WGs diverge.
// A Program is immutable after Validate and shared by all WGs of a launch.
type Program struct {
	NumRegs int
	Pool    []uint64 // word addresses selected by memory-op pool indices
	Code    []Op
}

// maxRegs bounds the register file (and so the per-WG frame footprint).
const maxRegs = 256

// hasDst reports whether the op kind produces a value that must land in a
// register (pure value ops) or may optionally (device ops with returns).
func needsDst(k OpKind) bool {
	switch k {
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpMod, OpGeom:
		return true
	}
	return false
}

// returnsValue reports whether a device op kind has a value to deliver.
func returnsValue(k OpKind) bool {
	switch k {
	case OpLoad, OpAtomicAdd, OpAtomicExch, OpAtomicCAS, OpAtomicLoad, OpAwaitEq, OpAwaitGE:
		return true
	}
	return false
}

// Validate checks the program's static invariants: register and pool
// indices in range, branch targets within [0, len(Code)], and op kinds,
// comparisons, and geometry selectors in their enums. Dynamic pool indices
// (register-valued memory operands) are range-checked at execution time.
func (p *Program) Validate() error {
	if p.NumRegs < 0 || p.NumRegs > maxRegs {
		return fmt.Errorf("prog: %d registers, want 0..%d", p.NumRegs, maxRegs)
	}
	checkSrc := func(pc int, s Src) error {
		if s.Reg >= 0 && int(s.Reg) >= p.NumRegs {
			return fmt.Errorf("prog: op %d reads r%d, have %d registers", pc, s.Reg, p.NumRegs)
		}
		return nil
	}
	checkPool := func(pc int, s Src) error {
		// Immediate pool indices are fully static; register-valued ones are
		// checked when the access executes.
		if s.Reg < 0 && (s.Imm < 0 || s.Imm >= int64(len(p.Pool))) {
			return fmt.Errorf("prog: op %d addresses pool[%d], pool has %d entries", pc, s.Imm, len(p.Pool))
		}
		return checkSrc(pc, s)
	}
	for pc := range p.Code {
		op := &p.Code[pc]
		if op.Kind >= opCount {
			return fmt.Errorf("prog: op %d has unknown kind %d", pc, op.Kind)
		}
		if needsDst(op.Kind) && (op.Dst < 0 || int(op.Dst) >= p.NumRegs) {
			return fmt.Errorf("prog: op %d (%s) writes r%d, have %d registers", pc, op.Kind, op.Dst, p.NumRegs)
		}
		if !needsDst(op.Kind) && op.Dst >= 0 {
			if !returnsValue(op.Kind) {
				return fmt.Errorf("prog: op %d (%s) names dst r%d but returns nothing", pc, op.Kind, op.Dst)
			}
			if int(op.Dst) >= p.NumRegs {
				return fmt.Errorf("prog: op %d (%s) writes r%d, have %d registers", pc, op.Kind, op.Dst, p.NumRegs)
			}
		}
		switch op.Kind {
		case OpJmp, OpBr:
			if op.Target < 0 || int(op.Target) > len(p.Code) {
				return fmt.Errorf("prog: op %d branches to %d, code has %d ops", pc, op.Target, len(p.Code))
			}
			if op.Kind == OpBr {
				if op.Cmp > GE {
					return fmt.Errorf("prog: op %d has unknown comparison %d", pc, op.Cmp)
				}
				if err := checkSrc(pc, op.A); err != nil {
					return err
				}
				if err := checkSrc(pc, op.B); err != nil {
					return err
				}
			}
		case OpGeom:
			if op.Geom >= geomCount {
				return fmt.Errorf("prog: op %d has unknown geometry selector %d", pc, op.Geom)
			}
		case OpMov:
			if err := checkSrc(pc, op.A); err != nil {
				return err
			}
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			if err := checkSrc(pc, op.A); err != nil {
				return err
			}
			if err := checkSrc(pc, op.B); err != nil {
				return err
			}
		case OpCompute:
			if err := checkSrc(pc, op.A); err != nil {
				return err
			}
		case OpSyncThreads:
			// no operands
		default: // memory ops: A is the pool index
			if err := checkPool(pc, op.A); err != nil {
				return err
			}
			if err := checkSrc(pc, op.B); err != nil {
				return err
			}
			if err := checkSrc(pc, op.C); err != nil {
				return err
			}
			if op.Scope > Local {
				return fmt.Errorf("prog: op %d has unknown scope %d", pc, op.Scope)
			}
		}
	}
	return nil
}

// Ops reports the code length.
func (p *Program) Ops() int { return len(p.Code) }
