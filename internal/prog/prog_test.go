package prog

import (
	"strings"
	"testing"
)

// TestBuilderLoop assembles the canonical bounded loop — i from 0 to 4,
// fetch-adding into a counter — and checks the pieces the interpreter
// depends on: forward labels patched to real targets, addresses interned,
// and the register count covering every allocated register.
func TestBuilderLoop(t *testing.T) {
	b := NewBuilder()
	ctr := b.GVar(0x100)
	i := b.Let(Imm(0))
	top := b.Here()
	b.AtomicAddX(ctr, Imm(1))
	b.ArithTo(OpAdd, i, i, Imm(1))
	b.Br(LT, i, Imm(4), top)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.NumRegs < 1 {
		t.Fatalf("NumRegs = %d, want >= 1", p.NumRegs)
	}
	if len(p.Pool) != 1 || p.Pool[0] != 0x100 {
		t.Fatalf("Pool = %v, want [0x100]", p.Pool)
	}
	br := p.Code[len(p.Code)-1]
	if br.Kind != OpBr {
		t.Fatalf("last op = %s, want br", br.Kind)
	}
	// The loop head is the op after the initial mov.
	if int(br.Target) != 1 {
		t.Fatalf("branch target = %d, want 1", br.Target)
	}
	if p.Ops() != len(p.Code) {
		t.Fatalf("Ops() = %d, want %d", p.Ops(), len(p.Code))
	}
}

func TestAddrInterning(t *testing.T) {
	b := NewBuilder()
	a1 := b.Addr(0x40)
	a2 := b.Addr(0x48)
	a3 := b.Addr(0x40)
	if a1 != a3 {
		t.Fatalf("same address interned twice: %v vs %v", a1, a3)
	}
	if a1 == a2 {
		t.Fatalf("distinct addresses share pool index %v", a1)
	}
	base := b.AddrRange([]uint64{0x40, 0x50})
	// AddrRange must append contiguously without interning, even when an
	// address is already pooled: register-computed indexing needs the
	// table laid out exactly as given.
	if base != 2 {
		t.Fatalf("AddrRange base = %d, want 2", base)
	}
	if len(b.pool) != 4 || b.pool[2] != 0x40 || b.pool[3] != 0x50 {
		t.Fatalf("pool after AddrRange = %#x", b.pool)
	}
}

func TestBuildUnboundLabel(t *testing.T) {
	b := NewBuilder()
	l := b.Label()
	b.Jmp(l)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "never bound") {
		t.Fatalf("Build with unbound label: err = %v", err)
	}
}

func TestBindTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double Bind did not panic")
		}
	}()
	b := NewBuilder()
	l := b.Label()
	b.Bind(l)
	b.Bind(l)
}

// TestValidateErrors drives Validate through each static check.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Program
		want string
	}{
		{"too many registers", Program{NumRegs: maxRegs + 1}, "registers"},
		{"negative registers", Program{NumRegs: -1}, "registers"},
		{"unknown kind", Program{Code: []Op{{Kind: opCount, Dst: -1}}}, "unknown kind"},
		{"source register out of range",
			Program{NumRegs: 1, Code: []Op{{Kind: OpMov, Dst: 0, A: R(3)}}}, "reads r3"},
		{"dst out of range",
			Program{NumRegs: 1, Code: []Op{{Kind: OpAdd, Dst: 4, A: Imm(1), B: Imm(2)}}}, "writes r4"},
		{"missing dst",
			Program{NumRegs: 1, Code: []Op{{Kind: OpMov, Dst: -1, A: Imm(0)}}}, "writes r-1"},
		{"dst on value-less op",
			Program{NumRegs: 1, Pool: []uint64{8}, Code: []Op{{Kind: OpStore, Dst: 0, A: Imm(0), B: Imm(1)}}},
			"returns nothing"},
		{"device dst out of range",
			Program{NumRegs: 1, Pool: []uint64{8}, Code: []Op{{Kind: OpLoad, Dst: 2, A: Imm(0)}}}, "writes r2"},
		{"static pool index out of range",
			Program{NumRegs: 1, Code: []Op{{Kind: OpLoad, Dst: -1, A: Imm(0)}}}, "pool has 0"},
		{"branch target out of range",
			Program{Code: []Op{{Kind: OpJmp, Dst: -1, Target: 5}}}, "branches to 5"},
		{"negative branch target",
			Program{Code: []Op{{Kind: OpJmp, Dst: -1, Target: -1}}}, "branches to -1"},
		{"unknown comparison",
			Program{Code: []Op{{Kind: OpBr, Dst: -1, Cmp: GE + 1, A: Imm(0), B: Imm(0)}}}, "comparison"},
		{"unknown geometry selector",
			Program{NumRegs: 1, Code: []Op{{Kind: OpGeom, Dst: 0, Geom: geomCount}}}, "geometry"},
		{"unknown scope",
			Program{Pool: []uint64{8}, Code: []Op{{Kind: OpStore, Dst: -1, A: Imm(0), B: Imm(0), C: Imm(0), Scope: Local + 1}}},
			"scope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestValidateAccepts pins the legal corners: a branch target of len(Code)
// (fall off the end), a discarded device return, and a register-valued pool
// index that cannot be checked statically.
func TestValidateAccepts(t *testing.T) {
	p := Program{
		NumRegs: 2,
		Pool:    []uint64{8, 16},
		Code: []Op{
			{Kind: OpMov, Dst: 0, A: Imm(1)},
			{Kind: OpBr, Dst: -1, Cmp: EQ, A: R(0), B: Imm(1), Target: 3},
			{Kind: OpAtomicAdd, Dst: -1, A: R(0), B: Imm(1)}, // dynamic pool index, discarded return
			{Kind: OpJmp, Dst: -1, Target: 4},                // == len(Code): program end
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCmpTest(t *testing.T) {
	cases := []struct {
		c       Cmp
		a, b    int64
		want    bool
		wantStr string
	}{
		{EQ, 3, 3, true, "=="},
		{NE, 3, 3, false, "!="},
		{LT, 2, 3, true, "<"},
		{LE, 3, 3, true, "<="},
		{GT, 3, 3, false, ">"},
		{GE, 4, 3, true, ">="},
	}
	for _, tc := range cases {
		if got := tc.c.Test(tc.a, tc.b); got != tc.want {
			t.Errorf("%d %s %d = %v, want %v", tc.a, tc.c, tc.b, got, tc.want)
		}
		if tc.c.String() != tc.wantStr {
			t.Errorf("Cmp(%d).String() = %q, want %q", tc.c, tc.c, tc.wantStr)
		}
	}
}

func TestOpKindClassification(t *testing.T) {
	for k := OpKind(0); k < opCount; k++ {
		if strings.HasPrefix(k.String(), "op(") {
			t.Errorf("OpKind %d has no name", k)
		}
		wantDevice := k >= OpCompute
		if k.IsDevice() != wantDevice {
			t.Errorf("%s.IsDevice() = %v, want %v", k, k.IsDevice(), wantDevice)
		}
	}
	if opCount.String() != "op(22)" {
		t.Errorf("out-of-range String() = %q", opCount.String())
	}
}
