package prog

import "fmt"

// Builder assembles a Program: it allocates registers, interns pool
// addresses, and patches forward branches through labels. The zero Builder
// is not usable; start with NewBuilder.
//
// The emit helpers mirror the gpu.Device surface. Value-producing pure ops
// allocate a fresh register per call site — ops are emitted once at build
// time, so a loop body reuses the same registers on every iteration and
// register files stay small.
type Builder struct {
	code    []Op
	pool    []uint64
	poolIdx map[uint64]int64
	nreg    int
	labels  []int // label -> bound pc, -1 while unbound
	patches []patch
}

type patch struct {
	pc    int
	label Label
}

// Label names a branch target; bind it to a position with Bind.
type Label int

// Mem is a memory operand: a pool-index source plus the synchronization
// scope the access carries. Local-scoped accesses belong to the executing
// WG's scheduling group.
type Mem struct {
	Idx   Src
	Scope Scope
}

// NewBuilder starts an empty program.
func NewBuilder() *Builder {
	return &Builder{poolIdx: make(map[uint64]int64)}
}

// Reg allocates a fresh register.
func (b *Builder) Reg() Src {
	r := b.nreg
	b.nreg++
	return R(r)
}

// Addr interns a word address into the pool and returns its index as an
// immediate operand.
func (b *Builder) Addr(a uint64) Src {
	if i, ok := b.poolIdx[a]; ok {
		return Imm(i)
	}
	i := int64(len(b.pool))
	b.pool = append(b.pool, a)
	b.poolIdx[a] = i
	return Imm(i)
}

// AddrRange appends addrs contiguously to the pool (no interning) and
// returns the base index, for register-computed indexing into a table.
func (b *Builder) AddrRange(addrs []uint64) int64 {
	base := int64(len(b.pool))
	b.pool = append(b.pool, addrs...)
	return base
}

// GVar is a globally scoped memory operand at a fixed address.
func (b *Builder) GVar(a uint64) Mem { return Mem{Idx: b.Addr(a), Scope: Global} }

// LVar is a locally scoped memory operand at a fixed address (the group is
// the executing WG's).
func (b *Builder) LVar(a uint64) Mem { return Mem{Idx: b.Addr(a), Scope: Local} }

// At is a memory operand whose pool index is computed at run time.
func At(idx Src, scope Scope) Mem { return Mem{Idx: idx, Scope: scope} }

func (b *Builder) emit(op Op) int {
	b.code = append(b.code, op)
	return len(b.code) - 1
}

// --- labels and control flow ---

// Label allocates an unbound label.
func (b *Builder) Label() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// Bind binds l to the next emitted op.
func (b *Builder) Bind(l Label) {
	if b.labels[l] != -1 {
		panic(fmt.Sprintf("prog: label %d bound twice", l))
	}
	b.labels[l] = len(b.code)
}

// Here returns a label bound to the next emitted op.
func (b *Builder) Here() Label {
	l := b.Label()
	b.Bind(l)
	return l
}

// Jmp emits an unconditional branch to l.
func (b *Builder) Jmp(l Label) {
	b.patches = append(b.patches, patch{pc: b.emit(Op{Kind: OpJmp, Dst: -1}), label: l})
}

// Br emits a conditional branch to l, taken when cmp(a, c) holds.
func (b *Builder) Br(cmp Cmp, a, c Src, l Label) {
	b.patches = append(b.patches, patch{pc: b.emit(Op{Kind: OpBr, Dst: -1, Cmp: cmp, A: a, B: c}), label: l})
}

// --- pure register ops ---

// Mov emits dst = a into an existing register.
func (b *Builder) Mov(dst, a Src) {
	b.emit(Op{Kind: OpMov, Dst: dst.Reg, A: a})
}

// Let allocates a register initialized to a.
func (b *Builder) Let(a Src) Src {
	r := b.Reg()
	b.Mov(r, a)
	return r
}

func (b *Builder) arith(k OpKind, a, c Src) Src {
	r := b.Reg()
	b.emit(Op{Kind: k, Dst: r.Reg, A: a, B: c})
	return r
}

// ArithTo emits dst = a <k> c into an existing register.
func (b *Builder) ArithTo(k OpKind, dst, a, c Src) {
	b.emit(Op{Kind: k, Dst: dst.Reg, A: a, B: c})
}

// Add emits a + c into a fresh register.
func (b *Builder) Add(a, c Src) Src { return b.arith(OpAdd, a, c) }

// Sub emits a - c into a fresh register.
func (b *Builder) Sub(a, c Src) Src { return b.arith(OpSub, a, c) }

// Mul emits a * c into a fresh register.
func (b *Builder) Mul(a, c Src) Src { return b.arith(OpMul, a, c) }

// Div emits a / c into a fresh register (c == 0 yields 0).
func (b *Builder) Div(a, c Src) Src { return b.arith(OpDiv, a, c) }

// Mod emits a % c into a fresh register (c == 0 yields 0).
func (b *Builder) Mod(a, c Src) Src { return b.arith(OpMod, a, c) }

// Geom reads a launch-geometry constant into a fresh register.
func (b *Builder) Geom(g Geom) Src {
	r := b.Reg()
	b.emit(Op{Kind: OpGeom, Dst: r.Reg, Geom: g})
	return r
}

// --- device ops ---

// Compute advances the WG by cycles of pure computation.
func (b *Builder) Compute(cycles Src) {
	b.emit(Op{Kind: OpCompute, Dst: -1, A: cycles})
}

// Load reads the word at m into a fresh register.
func (b *Builder) Load(m Mem) Src {
	r := b.Reg()
	b.emit(Op{Kind: OpLoad, Dst: r.Reg, A: m.Idx, Scope: m.Scope})
	return r
}

// Store writes v to the word at m.
func (b *Builder) Store(m Mem, v Src) {
	b.emit(Op{Kind: OpStore, Dst: -1, A: m.Idx, B: v, Scope: m.Scope})
}

// AtomicAdd fetch-adds delta into m, returning the old value.
func (b *Builder) AtomicAdd(m Mem, delta Src) Src {
	r := b.Reg()
	b.emit(Op{Kind: OpAtomicAdd, Dst: r.Reg, A: m.Idx, B: delta, Scope: m.Scope})
	return r
}

// AtomicAddX fetch-adds delta into m, discarding the old value.
func (b *Builder) AtomicAddX(m Mem, delta Src) {
	b.emit(Op{Kind: OpAtomicAdd, Dst: -1, A: m.Idx, B: delta, Scope: m.Scope})
}

// AtomicExch exchanges v into m, returning the old value.
func (b *Builder) AtomicExch(m Mem, v Src) Src {
	r := b.Reg()
	b.emit(Op{Kind: OpAtomicExch, Dst: r.Reg, A: m.Idx, B: v, Scope: m.Scope})
	return r
}

// AtomicExchX exchanges v into m, discarding the old value.
func (b *Builder) AtomicExchX(m Mem, v Src) {
	b.emit(Op{Kind: OpAtomicExch, Dst: -1, A: m.Idx, B: v, Scope: m.Scope})
}

// AtomicCAS compare-and-swaps m from cmp to v, returning the old value.
func (b *Builder) AtomicCAS(m Mem, cmp, v Src) Src {
	r := b.Reg()
	b.emit(Op{Kind: OpAtomicCAS, Dst: r.Reg, A: m.Idx, B: cmp, C: v, Scope: m.Scope})
	return r
}

// AtomicLoad reads m at its synchronization point.
func (b *Builder) AtomicLoad(m Mem) Src {
	r := b.Reg()
	b.emit(Op{Kind: OpAtomicLoad, Dst: r.Reg, A: m.Idx, Scope: m.Scope})
	return r
}

// AtomicStore writes v to m at its synchronization point.
func (b *Builder) AtomicStore(m Mem, v Src) {
	b.emit(Op{Kind: OpAtomicStore, Dst: -1, A: m.Idx, B: v, Scope: m.Scope})
}

// SyncThreads emits the intra-WG barrier.
func (b *Builder) SyncThreads() {
	b.emit(Op{Kind: OpSyncThreads, Dst: -1})
}

// AwaitEq blocks until m has been observed equal to want.
func (b *Builder) AwaitEq(m Mem, want Src) {
	b.emit(Op{Kind: OpAwaitEq, Dst: -1, A: m.Idx, B: want, Scope: m.Scope})
}

// AwaitGE blocks until m has been observed >= want.
func (b *Builder) AwaitGE(m Mem, want Src) {
	b.emit(Op{Kind: OpAwaitGE, Dst: -1, A: m.Idx, B: want, Scope: m.Scope})
}

// AcquireExch test-and-set acquires m: exchange locked in until the old
// value equals unlocked. hint requests the software-backoff wait form.
func (b *Builder) AcquireExch(m Mem, locked, unlocked Src, hint bool) {
	b.emit(Op{Kind: OpAcquireExch, Dst: -1, A: m.Idx, B: locked, C: unlocked, Scope: m.Scope, Hint: hint})
}

// AcquireCAS acquires m by repeating CAS(expect -> newv) until it succeeds.
func (b *Builder) AcquireCAS(m Mem, expect, newv Src) {
	b.emit(Op{Kind: OpAcquireCAS, Dst: -1, A: m.Idx, B: expect, C: newv, Scope: m.Scope})
}

// Build patches branches, validates, and returns the finished program. The
// builder must not be reused afterwards.
func (b *Builder) Build() (*Program, error) {
	for _, pt := range b.patches {
		at := b.labels[pt.label]
		if at == -1 {
			return nil, fmt.Errorf("prog: label %d never bound", pt.label)
		}
		b.code[pt.pc].Target = int32(at)
	}
	p := &Program{NumRegs: b.nreg, Pool: b.pool, Code: b.code}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for programs whose shape is statically known; it
// panics on a builder bug.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
