package hashutil

import (
	"math/rand"
	"testing"
)

// TestFlatMatchesMapOracle churns a Flat against a Go map under random
// insert/update/delete sequences, exercising growth and the backward-shift
// deletion's cluster repair.
func TestFlatMatchesMapOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := NewFlat[uint64, int64](4, Mix64)
		oracle := map[uint64]int64{}
		// A small key universe forces heavy collision and delete/reinsert
		// traffic through the same clusters.
		const universe = 97
		for op := 0; op < 20_000; op++ {
			k := uint64(rng.Intn(universe)) * 8
			switch rng.Intn(3) {
			case 0: // insert/update
				v := rng.Int63()
				*f.Put(k) = v
				oracle[k] = v
			case 1: // delete
				if f.Delete(k) != (func() bool { _, ok := oracle[k]; return ok })() {
					t.Fatalf("seed %d op %d: Delete(%d) presence mismatch", seed, op, k)
				}
				delete(oracle, k)
			case 2: // lookup
				p := f.Ref(k)
				v, ok := oracle[k]
				if (p != nil) != ok {
					t.Fatalf("seed %d op %d: Ref(%d) presence mismatch", seed, op, k)
				}
				if ok && *p != v {
					t.Fatalf("seed %d op %d: Ref(%d) = %d, want %d", seed, op, k, *p, v)
				}
			}
			if f.Len() != len(oracle) {
				t.Fatalf("seed %d op %d: Len %d, oracle %d", seed, op, f.Len(), len(oracle))
			}
		}
		// Full sweep: every oracle key must resolve.
		for k, v := range oracle {
			p := f.Ref(k)
			if p == nil || *p != v {
				t.Fatalf("seed %d: final Ref(%d) mismatch", seed, k)
			}
		}
	}
}

func TestFlatZeroAndGrowth(t *testing.T) {
	f := NewFlat[uint64, int](0, Mix64)
	for i := uint64(0); i < 1000; i++ {
		*f.Put(i) = int(i)
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", f.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		if p := f.Ref(i); p == nil || *p != int(i) {
			t.Fatalf("Ref(%d) lost after growth", i)
		}
	}
	for i := uint64(0); i < 1000; i += 2 {
		if !f.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if f.Len() != 500 {
		t.Fatalf("Len = %d, want 500", f.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		p := f.Ref(i)
		if (i%2 == 1) != (p != nil) {
			t.Fatalf("Ref(%d) presence wrong after deletes", i)
		}
	}
}
