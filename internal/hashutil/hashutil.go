// Package hashutil provides the hashing building blocks used by the SyncMon:
// Carter–Wegman universal hashing (used to index the condition cache, per
// Section V.C of the paper) and the small Bloom filters AWG uses to count
// unique updates to monitored addresses for its resume predictor.
package hashutil

import "math/bits"

// mersennePrime31 is 2^31-1, a Mersenne prime that makes the (a*x+b) mod p
// reduction cheap. It comfortably exceeds every hash-input universe used by
// the SyncMon (addresses folded to 31 bits).
const mersennePrime31 = (1 << 31) - 1

// Universal is a Carter–Wegman universal hash function
// h(x) = ((a*x + b) mod p) mod m, with p = 2^31-1.
//
// Members of the family are chosen by (a, b); the SyncMon fixes a family
// member at construction so the same condition always lands in the same
// cache set.
type Universal struct {
	a, b uint64
	m    uint64
}

// NewUniversal picks the family member identified by seed, mapping inputs
// onto [0, m). m must be positive. The seed is folded so that a is non-zero,
// as the universal-family definition requires.
func NewUniversal(seed uint64, m int) Universal {
	if m <= 0 {
		panic("hashutil: universal hash range must be positive")
	}
	a := (splitmix(seed) % (mersennePrime31 - 1)) + 1 // a in [1, p-1]
	b := splitmix(seed+0x9e3779b97f4a7c15) % mersennePrime31
	return Universal{a: a, b: b, m: uint64(m)}
}

// Hash maps x into [0, m).
func (u Universal) Hash(x uint64) int {
	x = fold31(x)
	h := (u.a*x + u.b) % mersennePrime31
	return int(h % u.m)
}

// fold31 reduces a 64-bit input into the 31-bit universe of the hash family
// while keeping high-order address entropy.
func fold31(x uint64) uint64 {
	return (x ^ x>>31 ^ x>>62) & mersennePrime31
}

// splitmix is the SplitMix64 finalizer, used only to derive well-mixed
// family parameters from small seeds.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// Bloom is a fixed-geometry Bloom filter matching the paper's AWG predictor
// hardware: each filter stores m bits (24 in the paper) probed by k hash
// functions (6 in the paper). With those parameters the paper reports a
// 2.1% false-positive probability for the unique-update counts it records.
type Bloom struct {
	bits  uint64 // m <= 64, so one word suffices for the hardware geometry
	m, k  int
	funcs []Universal
}

// NewBloom builds an m-bit, k-hash Bloom filter. m must be in (0, 64] —
// the hardware filters are tiny by design — and k positive.
func NewBloom(m, k int, seed uint64) *Bloom {
	if m <= 0 || m > 64 {
		panic("hashutil: bloom size must be in (0, 64]")
	}
	if k <= 0 {
		panic("hashutil: bloom needs at least one hash function")
	}
	funcs := make([]Universal, k)
	for i := range funcs {
		funcs[i] = NewUniversal(seed+uint64(i)*0x1000193, m)
	}
	return &Bloom{m: m, k: k, funcs: funcs}
}

// Add records value v. It reports whether v was possibly already present
// before the insertion (i.e. all probed bits were already set).
func (b *Bloom) Add(v uint64) (alreadyPresent bool) {
	alreadyPresent = true
	for _, f := range b.funcs {
		bit := uint64(1) << uint(f.Hash(v))
		if b.bits&bit == 0 {
			alreadyPresent = false
			b.bits |= bit
		}
	}
	return alreadyPresent
}

// MayContain reports whether v may have been added. False means definitely
// not added; true may be a false positive.
func (b *Bloom) MayContain(v uint64) bool {
	for _, f := range b.funcs {
		if b.bits&(uint64(1)<<uint(f.Hash(v))) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter; the paper resets a filter once its condition has
// been met, all waiters resumed, and the address unmonitored.
func (b *Bloom) Reset() { b.bits = 0 }

// PopCount reports how many bits are set, a cheap saturation signal.
func (b *Bloom) PopCount() int { return bits.OnesCount64(b.bits) }

// State returns the filter's bit vector — with the fixed <= 64-bit hardware
// geometry, one word is the filter's entire mutable state. Snapshot/restore
// round-trips it through SetState.
func (b *Bloom) State() uint64 { return b.bits }

// SetState overwrites the filter's bit vector with one previously returned
// by State.
func (b *Bloom) SetState(bits uint64) { b.bits = bits }

// Bits reports the filter geometry (m) for introspection and tests.
func (b *Bloom) Bits() int { return b.m }

// UniqueCounter tracks an approximate count of distinct values observed at a
// monitored address. It is the structure AWG consults to decide between
// resume-one and resume-all: mutexes toggle between at most two values while
// barrier counters sweep through many.
type UniqueCounter struct {
	bloom *Bloom
	count int
}

// NewUniqueCounter builds a counter backed by the paper's 24-bit, 6-hash
// Bloom geometry unless overridden.
func NewUniqueCounter(m, k int, seed uint64) *UniqueCounter {
	return &UniqueCounter{bloom: NewBloom(m, k, seed)}
}

// Observe records an updated value and returns the current unique count.
// Bloom false positives can only under-count, mirroring the hardware.
func (c *UniqueCounter) Observe(v uint64) int {
	if !c.bloom.Add(v) {
		c.count++
	}
	return c.count
}

// Count reports the unique values observed since the last reset.
func (c *UniqueCounter) Count() int { return c.count }

// Reset clears the counter and its filter.
func (c *UniqueCounter) Reset() {
	c.bloom.Reset()
	c.count = 0
}

// CounterState is a UniqueCounter's mutable state: the filter bits plus the
// running unique count.
type CounterState struct {
	Bits  uint64
	Count int
}

// State captures the counter's mutable state for a snapshot.
func (c *UniqueCounter) State() CounterState {
	return CounterState{Bits: c.bloom.State(), Count: c.count}
}

// SetState restores state previously captured with State.
func (c *UniqueCounter) SetState(s CounterState) {
	c.bloom.SetState(s.Bits)
	c.count = s.Count
}
