package hashutil

// Flat is a deterministic open-addressed hash map with linear probing and
// backward-shift deletion. It is the indexing half of the simulator's
// data-oriented hot state: the SyncMon condition cache, the CP spill table
// and the memory page directory all keep their payloads in slabs and use a
// Flat to find slots by key, replacing Go maps on the bank-service path
// (no per-entry allocation, no hashing seed randomization, no iteration —
// so no order can leak into simulated behavior).
//
// The caller supplies the hash function at construction; equality is the
// key type's ==. Pointers returned by Ref/Put are invalidated by the next
// Put or Delete (the table may grow or shift slots).
type Flat[K comparable, V any] struct {
	hash func(K) uint64
	keys []K
	vals []V
	used []bool
	mask uint64
	live int
}

// NewFlat builds a table with capacity for at least hint entries before the
// first growth. hash must be deterministic across processes (no map-seed or
// pointer inputs) — simulated state depends on nothing but the op sequence.
func NewFlat[K comparable, V any](hint int, hash func(K) uint64) *Flat[K, V] {
	n := 8
	for n*3 < hint*4 { // keep load factor under 3/4 for the hint
		n *= 2
	}
	return &Flat[K, V]{
		hash: hash,
		keys: make([]K, n),
		vals: make([]V, n),
		used: make([]bool, n),
		mask: uint64(n - 1),
	}
}

// Len reports the number of live entries.
func (f *Flat[K, V]) Len() int { return f.live }

// Ref returns a pointer to k's value, or nil when absent. The pointer is
// valid only until the next Put or Delete.
func (f *Flat[K, V]) Ref(k K) *V {
	i := f.hash(k) & f.mask
	for f.used[i] {
		if f.keys[i] == k {
			return &f.vals[i]
		}
		i = (i + 1) & f.mask
	}
	return nil
}

// Put returns a pointer to k's value, inserting a zero value first when k
// is absent. The pointer is valid only until the next Put or Delete.
func (f *Flat[K, V]) Put(k K) *V {
	if (f.live+1)*4 > len(f.keys)*3 {
		f.grow()
	}
	i := f.hash(k) & f.mask
	for f.used[i] {
		if f.keys[i] == k {
			return &f.vals[i]
		}
		i = (i + 1) & f.mask
	}
	f.used[i] = true
	f.keys[i] = k
	f.live++
	return &f.vals[i]
}

// Delete removes k, reporting whether it was present. Deletion backward-
// shifts the following probe cluster so no tombstones accumulate: lookup
// cost stays bounded by the load factor no matter how the key set churns.
func (f *Flat[K, V]) Delete(k K) bool {
	i := f.hash(k) & f.mask
	for f.used[i] {
		if f.keys[i] == k {
			f.backshift(i)
			f.live--
			return true
		}
		i = (i + 1) & f.mask
	}
	return false
}

// backshift vacates slot i, sliding later cluster members down when their
// home position permits (the classical linear-probing deletion).
func (f *Flat[K, V]) backshift(i uint64) {
	var zeroK K
	var zeroV V
	j := i
	for {
		j = (j + 1) & f.mask
		if !f.used[j] {
			break
		}
		home := f.hash(f.keys[j]) & f.mask
		// Move j down to i unless that would place it before its home
		// position within the cluster.
		if (j-home)&f.mask >= (j-i)&f.mask {
			f.keys[i], f.vals[i] = f.keys[j], f.vals[j]
			i = j
		}
	}
	f.used[i] = false
	f.keys[i], f.vals[i] = zeroK, zeroV
}

func (f *Flat[K, V]) grow() {
	oldK, oldV, oldU := f.keys, f.vals, f.used
	n := len(oldK) * 2
	f.keys = make([]K, n)
	f.vals = make([]V, n)
	f.used = make([]bool, n)
	f.mask = uint64(n - 1)
	for s, u := range oldU {
		if !u {
			continue
		}
		i := f.hash(oldK[s]) & f.mask
		for f.used[i] {
			i = (i + 1) & f.mask
		}
		f.used[i] = true
		f.keys[i] = oldK[s]
		f.vals[i] = oldV[s]
	}
}

// Clone returns an independent deep copy of the table sharing only the hash
// function. Snapshot/restore uses it: a clone preserves slot positions
// exactly, so a restored table probes identically to the original.
func (f *Flat[K, V]) Clone() *Flat[K, V] {
	return &Flat[K, V]{
		hash: f.hash,
		keys: append([]K(nil), f.keys...),
		vals: append([]V(nil), f.vals...),
		used: append([]bool(nil), f.used...),
		mask: f.mask,
		live: f.live,
	}
}

// CopyFrom overwrites f's contents with src's (typically a Clone taken
// earlier), reusing f's backing arrays when the geometries match so a
// restore does not allocate.
func (f *Flat[K, V]) CopyFrom(src *Flat[K, V]) {
	if len(f.keys) != len(src.keys) {
		f.keys = make([]K, len(src.keys))
		f.vals = make([]V, len(src.vals))
		f.used = make([]bool, len(src.used))
	}
	copy(f.keys, src.keys)
	copy(f.vals, src.vals)
	copy(f.used, src.used)
	f.mask = src.mask
	f.live = src.live
}

// Mix64 is the SplitMix64 finalizer, exported as the default key-mixing
// function for Flat tables over addresses and packed condition keys.
func Mix64(x uint64) uint64 { return splitmix(x) }
