package hashutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniversalRange(t *testing.T) {
	u := NewUniversal(1, 256)
	for x := uint64(0); x < 10000; x++ {
		h := u.Hash(x)
		if h < 0 || h >= 256 {
			t.Fatalf("Hash(%d) = %d out of [0,256)", x, h)
		}
	}
}

func TestUniversalDeterministic(t *testing.T) {
	a := NewUniversal(7, 1024)
	b := NewUniversal(7, 1024)
	for x := uint64(0); x < 1000; x++ {
		if a.Hash(x) != b.Hash(x) {
			t.Fatalf("same seed disagreed at %d", x)
		}
	}
}

func TestUniversalSeedsDiffer(t *testing.T) {
	a := NewUniversal(1, 1<<20)
	b := NewUniversal(2, 1<<20)
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if a.Hash(x) == b.Hash(x) {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("two family members collided on %d/1000 inputs", same)
	}
}

func TestUniversalSpread(t *testing.T) {
	// Sequential addresses (the common monitored-address pattern: a lock
	// array with 64 B stride) must spread across sets, not pile into one.
	u := NewUniversal(3, 256)
	counts := make(map[int]int)
	for i := uint64(0); i < 4096; i++ {
		counts[u.Hash(0x1000+i*64)]++
	}
	for set, n := range counts {
		if n > 4096/256*8 {
			t.Fatalf("set %d received %d of 4096 sequential addresses", set, n)
		}
	}
}

func TestUniversalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewUniversal(seed, 0) did not panic")
		}
	}()
	NewUniversal(1, 0)
}

func TestBloomEmpty(t *testing.T) {
	b := NewBloom(24, 6, 1)
	for v := uint64(0); v < 100; v++ {
		if b.MayContain(v) {
			t.Fatalf("empty bloom claims to contain %d", v)
		}
	}
	if b.PopCount() != 0 {
		t.Fatalf("empty bloom has %d bits set", b.PopCount())
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(vals []uint64) bool {
		b := NewBloom(64, 6, 99)
		for _, v := range vals {
			b.Add(v)
		}
		for _, v := range vals {
			if !b.MayContain(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBloomAddReportsPresence(t *testing.T) {
	b := NewBloom(24, 6, 5)
	if b.Add(42) {
		t.Fatal("first Add(42) reported already present")
	}
	if !b.Add(42) {
		t.Fatal("second Add(42) reported absent")
	}
}

func TestBloomReset(t *testing.T) {
	b := NewBloom(24, 6, 5)
	b.Add(1)
	b.Add(2)
	b.Reset()
	if b.PopCount() != 0 {
		t.Fatalf("%d bits set after Reset", b.PopCount())
	}
	if b.MayContain(1) {
		t.Fatal("reset bloom still contains 1")
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	// The paper's geometry (24 bits, 6 hashes) targets ~2.1% false positives
	// for the handful of unique values a monitored sync variable sees.
	// Verify the measured rate is in that ballpark after 3 insertions.
	rng := rand.New(rand.NewSource(11))
	trials, falsePos, probes := 2000, 0, 0
	for i := 0; i < trials; i++ {
		b := NewBloom(24, 6, uint64(i))
		inserted := map[uint64]bool{}
		for j := 0; j < 3; j++ {
			v := rng.Uint64()
			b.Add(v)
			inserted[v] = true
		}
		for j := 0; j < 10; j++ {
			v := rng.Uint64()
			if inserted[v] {
				continue
			}
			probes++
			if b.MayContain(v) {
				falsePos++
			}
		}
	}
	rate := float64(falsePos) / float64(probes)
	if rate > 0.10 {
		t.Fatalf("false positive rate %.3f, want around the paper's 0.021 (<0.10)", rate)
	}
}

func TestBloomGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ m, k int }{{0, 6}, {65, 6}, {24, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBloom(%d, %d) did not panic", tc.m, tc.k)
				}
			}()
			NewBloom(tc.m, tc.k, 1)
		}()
	}
}

func TestUniqueCounterMutexPattern(t *testing.T) {
	// A test-and-set lock toggles between two values; the counter must
	// report <= 2 uniques no matter how many updates occur.
	c := NewUniqueCounter(24, 6, 3)
	for i := 0; i < 100; i++ {
		c.Observe(uint64(i % 2))
	}
	if got := c.Count(); got != 2 {
		t.Fatalf("mutex pattern counted %d uniques, want 2", got)
	}
}

func TestUniqueCounterBarrierPattern(t *testing.T) {
	// A barrier counter sweeps 1..N; the predictor needs to see "more than
	// two unique updates". Bloom false positives may under-count slightly,
	// so require a healthy majority rather than an exact N.
	c := NewUniqueCounter(24, 6, 4)
	const n = 8
	for i := 1; i <= n; i++ {
		c.Observe(uint64(i))
	}
	if got := c.Count(); got <= 2 || got > n {
		t.Fatalf("barrier pattern counted %d uniques, want in (2,%d]", got, n)
	}
}

func TestUniqueCounterNeverOverCounts(t *testing.T) {
	f := func(vals []uint8) bool {
		c := NewUniqueCounter(64, 6, 8)
		distinct := map[uint8]bool{}
		for _, v := range vals {
			c.Observe(uint64(v))
			distinct[v] = true
		}
		return c.Count() <= len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueCounterReset(t *testing.T) {
	c := NewUniqueCounter(24, 6, 9)
	c.Observe(1)
	c.Observe(2)
	c.Reset()
	if c.Count() != 0 {
		t.Fatalf("count %d after reset, want 0", c.Count())
	}
	if got := c.Observe(3); got != 1 {
		t.Fatalf("first observation after reset counted %d, want 1", got)
	}
}

func BenchmarkUniversalHash(b *testing.B) {
	u := NewUniversal(1, 256)
	for i := 0; i < b.N; i++ {
		_ = u.Hash(uint64(i) * 64)
	}
}

func BenchmarkBloomObserve(b *testing.B) {
	c := NewUniqueCounter(24, 6, 1)
	for i := 0; i < b.N; i++ {
		c.Observe(uint64(i % 8))
	}
}
