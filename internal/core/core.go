// Package core implements the decision logic that distinguishes AWG from
// the simpler monitor architectures in the paper's design space:
//
//   - the resume-count predictor (Section V.A): one counting Bloom filter
//     per monitored address records unique updates; together with the
//     number of waiters per condition it predicts whether to resume all
//     waiters (barrier-like conditions, many unique updates) or one at a
//     time (mutex-like conditions, at most two values toggling);
//   - the stall-time predictor (Section IV.B): an exponential moving
//     average of observed time-to-condition-met per address, used to stall
//     a waiting WG on its CU for a predicted period and context switch out
//     only if the condition is still unmet when the period expires;
//   - the fixed resume selectors (all / one) of MonNR-All and MonNR-One,
//     and the MinResume oracle Figure 9 normalizes against.
package core

import (
	"awgsim/internal/event"
	"awgsim/internal/hashutil"
	"awgsim/internal/mem"
	"awgsim/internal/syncmon"
)

// ResumeAll resumes every waiter whenever a condition is met: MonR-All,
// MonNR-All, and MonRS-All behaviour.
type ResumeAll struct{}

func (ResumeAll) ObserveUpdate(mem.Addr, int64) {}
func (ResumeAll) AddressUnmonitored(mem.Addr)   {}
func (ResumeAll) Select(_ mem.Addr, _ int64, classes []syncmon.OpClass) int {
	return len(classes)
}

// ResumeOne resumes a single waiter per met condition and keeps monitoring
// it: MonNR-One behaviour. The remaining waiters resume on later matching
// updates or their policy timeout.
type ResumeOne struct{}

func (ResumeOne) ObserveUpdate(mem.Addr, int64) {}
func (ResumeOne) AddressUnmonitored(mem.Addr)   {}
func (ResumeOne) Select(mem.Addr, int64, []syncmon.OpClass) int {
	return 1
}

// Oracle is the MinResume configuration of Figure 9: it never resumes a WG
// unnecessarily. Load-class waiters (barrier arrivals, ticket holders) all
// succeed once their condition holds, so all of them resume; RMW-class
// waiters contend for a single acquire, so exactly one resumes.
type Oracle struct{}

func (Oracle) ObserveUpdate(mem.Addr, int64) {}
func (Oracle) AddressUnmonitored(mem.Addr)   {}
func (Oracle) Select(_ mem.Addr, _ int64, classes []syncmon.OpClass) int {
	n := 0
	for _, c := range classes {
		if c == syncmon.ClassLoad {
			n++
		}
	}
	if n == 0 {
		return 1 // pure RMW contention: hand off to exactly one
	}
	if n < len(classes) {
		// Mixed: resume the load-class waiters plus one RMW contender.
		return n + 1
	}
	return n
}

// PredictorConfig sizes the AWG resume predictor: 512 Bloom filters of 24
// bits with 6 hash functions each (Section V.C).
type PredictorConfig struct {
	Filters   int
	BloomBits int
	BloomK    int
	Seed      uint64
}

// DefaultPredictorConfig matches the paper's hardware budget (1.5 KB).
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{Filters: 512, BloomBits: 24, BloomK: 6, Seed: 0xb100f}
}

// Predictor is AWG's resume-count predictor. Per the paper: resume all
// waiters when a condition has more than one waiter and its address has
// seen more than two unique updates (a barrier counter sweeping values);
// resume one by one when there are multiple waiters but at most two unique
// updates (a mutex toggling locked/unlocked).
type Predictor struct {
	cfg      PredictorConfig
	counters []*hashutil.UniqueCounter
	index    hashutil.Universal

	// Counters the policy layer surfaces into the run result.
	PredictedAll, PredictedOne, Resets uint64
}

// NewPredictor builds the predictor.
func NewPredictor(cfg PredictorConfig) *Predictor {
	if cfg.Filters <= 0 {
		panic("core: predictor needs at least one filter")
	}
	p := &Predictor{
		cfg:      cfg,
		counters: make([]*hashutil.UniqueCounter, cfg.Filters),
		index:    hashutil.NewUniversal(cfg.Seed, cfg.Filters),
	}
	for i := range p.counters {
		p.counters[i] = hashutil.NewUniqueCounter(cfg.BloomBits, cfg.BloomK, cfg.Seed+uint64(i))
	}
	return p
}

func (p *Predictor) counterFor(addr mem.Addr) *hashutil.UniqueCounter {
	return p.counters[p.index.Hash(uint64(addr))]
}

// ObserveUpdate records an update's value in the address's Bloom filter.
func (p *Predictor) ObserveUpdate(addr mem.Addr, newVal int64) {
	p.counterFor(addr).Observe(uint64(newVal))
}

// Select implements the paper's prediction rule.
func (p *Predictor) Select(addr mem.Addr, _ int64, classes []syncmon.OpClass) int {
	waiters := len(classes)
	if waiters <= 1 {
		return waiters
	}
	if p.counterFor(addr).Count() > 2 {
		p.PredictedAll++
		return waiters
	}
	p.PredictedOne++
	return 1
}

// AddressUnmonitored resets the address's Bloom filter, per the paper:
// "once a condition has been met, all waiting WGs have resumed, and the
// address is not monitored, the associated Bloom filter is reset".
func (p *Predictor) AddressUnmonitored(addr mem.Addr) {
	p.counterFor(addr).Reset()
	p.Resets++
}

// UniqueUpdates reports the current unique-update estimate for an address
// (for tests and traces).
func (p *Predictor) UniqueUpdates(addr mem.Addr) int {
	return p.counterFor(addr).Count()
}

// StallPredictor estimates how long a WG will wait on a condition at a
// given address, from the history of met conditions there. AWG stalls a
// waiting WG for the predicted period before paying for a context switch
// (Section IV.B: "AWG predicts the stall period by recording the mean
// number of cycles at which conditions are met").
type StallPredictor struct {
	min, max event.Cycle
	ewma     map[mem.Addr]float64
	weight   float64
}

// NewStallPredictor builds a predictor clamping predictions to [min, max].
func NewStallPredictor(min, max event.Cycle) *StallPredictor {
	if min > max {
		min, max = max, min
	}
	return &StallPredictor{
		min:    min,
		max:    max,
		ewma:   make(map[mem.Addr]float64),
		weight: 0.25,
	}
}

// Record notes that a wait on addr lasted d cycles until its condition met.
func (s *StallPredictor) Record(addr mem.Addr, d event.Cycle) {
	prev, ok := s.ewma[addr]
	if !ok {
		s.ewma[addr] = float64(d)
		return
	}
	s.ewma[addr] = prev + s.weight*(float64(d)-prev)
}

// Predict returns the stall period to use for a new wait on addr. Without
// history it returns the maximum (stay resident as long as allowed — the
// optimistic default that avoids needless context switches).
func (s *StallPredictor) Predict(addr mem.Addr) event.Cycle {
	v, ok := s.ewma[addr]
	if !ok {
		return s.max
	}
	c := event.Cycle(v)
	if c < s.min {
		return s.min
	}
	if c > s.max {
		return s.max
	}
	return c
}
