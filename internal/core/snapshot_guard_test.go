package core

import (
	"reflect"
	"testing"
)

// fieldNames returns a struct type's field names in declaration order.
func fieldNames(v any) []string {
	rt := reflect.TypeOf(v)
	names := make([]string, rt.NumField())
	for i := range names {
		names[i] = rt.Field(i).Name
	}
	return names
}

// TestSnapshotCoversPredictors pins the field lists of the predictor
// structs. If one fails, a field was added (or renamed): decide whether it
// is replayable state, teach State()/SetState() about it, and update the
// list here.
func TestSnapshotCoversPredictors(t *testing.T) {
	// Covered: counters (Bloom filter state) and the three exported
	// counters. Excluded: cfg (immutable), index (derived addressing,
	// rebuilt deterministically from cfg).
	predictor := []string{
		"cfg", "counters", "index", "PredictedAll", "PredictedOne", "Resets",
	}
	// Covered: ewma. Excluded: min/max/weight, immutable tuning.
	stall := []string{"min", "max", "ewma", "weight"}
	for _, c := range []struct {
		name string
		got  []string
		want []string
	}{
		{"core.Predictor", fieldNames(Predictor{}), predictor},
		{"core.StallPredictor", fieldNames(StallPredictor{}), stall},
	} {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("%s fields changed without updating the snapshot state:\n  got  %v\n  want %v", c.name, c.got, c.want)
		}
	}
}
