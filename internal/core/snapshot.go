package core

import (
	"awgsim/internal/hashutil"
	"awgsim/internal/mem"
)

// Snapshot/Restore for the predictors. Both are tiny relative to the
// machine — 512 one-word Bloom states plus an EWMA table — so they are
// copied eagerly.

// PredictorSnap is a point-in-time copy of a Predictor's mutable state:
// every counter's filter bits and unique count plus the surfaced counters.
type PredictorSnap struct {
	counters                           []hashutil.CounterState
	predictedAll, predictedOne, resets uint64
}

// Snapshot captures the predictor's mutable state.
func (p *Predictor) Snapshot() *PredictorSnap {
	s := &PredictorSnap{
		counters:     make([]hashutil.CounterState, len(p.counters)),
		predictedAll: p.PredictedAll,
		predictedOne: p.PredictedOne,
		resets:       p.Resets,
	}
	for i, c := range p.counters {
		s.counters[i] = c.State()
	}
	return s
}

// Restore rewinds the predictor to the snapshot.
func (p *Predictor) Restore(s *PredictorSnap) {
	for i, c := range p.counters {
		c.SetState(s.counters[i])
	}
	p.PredictedAll, p.PredictedOne, p.Resets = s.predictedAll, s.predictedOne, s.resets
}

// Bytes estimates the snapshot's memory footprint.
func (s *PredictorSnap) Bytes() int { return 24 + 16*len(s.counters) }

// StallSnap is a point-in-time copy of a StallPredictor's EWMA table.
type StallSnap struct {
	ewma map[mem.Addr]float64
}

// Snapshot captures the stall predictor's history.
func (s *StallPredictor) Snapshot() *StallSnap {
	sn := &StallSnap{ewma: make(map[mem.Addr]float64, len(s.ewma))}
	for k, v := range s.ewma {
		sn.ewma[k] = v
	}
	return sn
}

// Restore rewinds the stall predictor to the snapshot.
func (s *StallPredictor) Restore(sn *StallSnap) {
	clear(s.ewma)
	for k, v := range sn.ewma {
		s.ewma[k] = v
	}
}

// Bytes estimates the snapshot's memory footprint.
func (sn *StallSnap) Bytes() int { return 48 + 16*len(sn.ewma) }
