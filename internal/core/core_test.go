package core

import (
	"testing"
	"testing/quick"

	"awgsim/internal/event"
	"awgsim/internal/mem"
	"awgsim/internal/syncmon"
)

func classes(rmw, load int) []syncmon.OpClass {
	var out []syncmon.OpClass
	for i := 0; i < load; i++ {
		out = append(out, syncmon.ClassLoad)
	}
	for i := 0; i < rmw; i++ {
		out = append(out, syncmon.ClassRMW)
	}
	return out
}

func TestResumeAll(t *testing.T) {
	s := ResumeAll{}
	if got := s.Select(0, 0, classes(3, 4)); got != 7 {
		t.Fatalf("ResumeAll.Select = %d, want 7", got)
	}
	s.ObserveUpdate(0, 1) // no-ops must not panic
	s.AddressUnmonitored(0)
}

func TestResumeOne(t *testing.T) {
	s := ResumeOne{}
	if got := s.Select(0, 0, classes(5, 5)); got != 1 {
		t.Fatalf("ResumeOne.Select = %d, want 1", got)
	}
}

func TestOracle(t *testing.T) {
	o := Oracle{}
	// Pure RMW contention (mutex): exactly one.
	if got := o.Select(0, 0, classes(5, 0)); got != 1 {
		t.Fatalf("pure RMW: %d, want 1", got)
	}
	// Pure load waiters (barrier): all.
	if got := o.Select(0, 0, classes(0, 6)); got != 6 {
		t.Fatalf("pure load: %d, want 6", got)
	}
	// Mixed: loads + one RMW contender.
	if got := o.Select(0, 0, classes(3, 4)); got != 5 {
		t.Fatalf("mixed: %d, want 5", got)
	}
}

func TestOracleNeverExceedsWaiters(t *testing.T) {
	f := func(rmw, load uint8) bool {
		r, l := int(rmw%16), int(load%16)
		if r+l == 0 {
			return true
		}
		n := Oracle{}.Select(0, 0, classes(r, l))
		return n >= 1 && n <= r+l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorMutexPattern(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	addr := mem.Addr(0x1000)
	// A lock toggles between two values: resume one.
	for i := 0; i < 50; i++ {
		p.ObserveUpdate(addr, int64(i%2))
	}
	if got := p.Select(addr, 0, classes(8, 0)); got != 1 {
		t.Fatalf("mutex pattern: Select = %d, want 1", got)
	}
	if p.PredictedOne == 0 {
		t.Fatal("PredictedOne not counted")
	}
}

func TestPredictorBarrierPattern(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	addr := mem.Addr(0x2000)
	// A barrier counter sweeps many values: resume all.
	for i := 1; i <= 8; i++ {
		p.ObserveUpdate(addr, int64(i))
	}
	if got := p.Select(addr, 8, classes(0, 7)); got != 7 {
		t.Fatalf("barrier pattern: Select = %d, want 7 (uniques=%d)",
			got, p.UniqueUpdates(addr))
	}
	if p.PredictedAll == 0 {
		t.Fatal("PredictedAll not counted")
	}
}

func TestPredictorSingleWaiter(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	if got := p.Select(0x10, 0, classes(1, 0)); got != 1 {
		t.Fatalf("single waiter: %d, want 1", got)
	}
	if got := p.Select(0x10, 0, nil); got != 0 {
		t.Fatalf("no waiters: %d, want 0", got)
	}
	// Neither case should count as a prediction.
	if p.PredictedAll+p.PredictedOne != 0 {
		t.Fatal("trivial selects counted as predictions")
	}
}

func TestPredictorReset(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	addr := mem.Addr(0x3000)
	for i := 1; i <= 8; i++ {
		p.ObserveUpdate(addr, int64(i))
	}
	p.AddressUnmonitored(addr)
	if p.Resets != 1 {
		t.Fatalf("Resets = %d, want 1", p.Resets)
	}
	if got := p.UniqueUpdates(addr); got != 0 {
		t.Fatalf("uniques after reset = %d, want 0", got)
	}
	// Post-reset, a two-value pattern predicts one again.
	p.ObserveUpdate(addr, 0)
	p.ObserveUpdate(addr, 1)
	if got := p.Select(addr, 0, classes(4, 0)); got != 1 {
		t.Fatalf("after reset: Select = %d, want 1", got)
	}
}

func TestPredictorConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-filter predictor accepted")
		}
	}()
	NewPredictor(PredictorConfig{Filters: 0, BloomBits: 24, BloomK: 6})
}

func TestStallPredictorDefaults(t *testing.T) {
	s := NewStallPredictor(100, 5000)
	if got := s.Predict(0x10); got != 5000 {
		t.Fatalf("no-history prediction = %d, want the 5000 max", got)
	}
}

func TestStallPredictorClamps(t *testing.T) {
	s := NewStallPredictor(100, 5000)
	s.Record(0x10, 10)
	if got := s.Predict(0x10); got != 100 {
		t.Fatalf("tiny history predicted %d, want clamp to 100", got)
	}
	s.Record(0x20, 1_000_000)
	if got := s.Predict(0x20); got != 5000 {
		t.Fatalf("huge history predicted %d, want clamp to 5000", got)
	}
}

func TestStallPredictorEWMATracks(t *testing.T) {
	s := NewStallPredictor(1, 1_000_000)
	for i := 0; i < 50; i++ {
		s.Record(0x30, 2000)
	}
	got := s.Predict(0x30)
	if got < 1900 || got > 2100 {
		t.Fatalf("EWMA of constant 2000 predicted %d", got)
	}
	// Shift the regime; the EWMA must follow.
	for i := 0; i < 50; i++ {
		s.Record(0x30, 8000)
	}
	got = s.Predict(0x30)
	if got < 7000 {
		t.Fatalf("EWMA stuck at %d after regime change to 8000", got)
	}
}

func TestStallPredictorSwappedBounds(t *testing.T) {
	s := NewStallPredictor(5000, 100) // swapped: must normalize
	s.Record(0x40, 1)
	if got := s.Predict(0x40); got != 100 {
		t.Fatalf("prediction %d with swapped bounds, want 100", got)
	}
}

func TestStallPredictorPerAddressIsolation(t *testing.T) {
	s := NewStallPredictor(1, event.Cycle(1)<<40)
	s.Record(0xA0, 100)
	s.Record(0xB0, 9000)
	if a, b := s.Predict(0xA0), s.Predict(0xB0); a >= b {
		t.Fatalf("addresses leaked: %d vs %d", a, b)
	}
}
