module awgsim

go 1.22
