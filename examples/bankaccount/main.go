// Bankaccount: the second Table 2 caption application — money transfers
// between accounts guarded by per-account ticket locks, taken in account
// order. The invariant (total balance conserved) is validated after every
// run; the example also demonstrates that the oversubscribed scenario
// preserves correctness under AWG while the baseline deadlocks.
//
//	go run ./examples/bankaccount
package main

import (
	"fmt"

	"awgsim/awg"
	"awgsim/internal/kernels"
)

func main() {
	fmt.Println("Bank transfers with fine-grained ticket locks")
	fmt.Println("=============================================")
	fmt.Println()

	params := kernels.DefaultParams()
	params.Iters = 12

	fmt.Printf("%d work-groups each perform %d transfers between 8 accounts;\n",
		params.NumWGs, params.Iters)
	fmt.Println("each transfer locks both accounts (in account order) with FIFO")
	fmt.Println("ticket locks. Money must be conserved.")
	fmt.Println()

	// Non-oversubscribed comparison.
	var base awg.Result
	for i, policy := range []string{"Baseline", "AWG"} {
		res, err := awg.Run(awg.Config{Benchmark: "BankAccount", Policy: policy, Params: params})
		if err != nil {
			fmt.Printf("%-9s VALIDATION FAILED: %v\n", policy, err)
			continue
		}
		if i == 0 {
			base = res
		}
		fmt.Printf("%-9s %9d cycles  %8d atomics  speedup %.2fx  (balances conserved)\n",
			policy, res.Cycles, res.Atomics, res.Speedup(base))
	}

	// The same workload with a CU preempted mid-run.
	fmt.Println()
	fmt.Println("Now preempting one CU 50 us into the kernel:")
	params.Iters = 40
	for _, policy := range []string{"Baseline", "AWG"} {
		res, err := awg.Run(awg.Config{
			Benchmark: "BankAccount", Policy: policy,
			Params: params, Oversubscribe: true,
		})
		if err != nil {
			fmt.Printf("%-9s VALIDATION FAILED: %v\n", policy, err)
			continue
		}
		if res.Deadlocked {
			fmt.Printf("%-9s DEADLOCK — ticket holders were evicted and the FIFO queues\n", policy)
			fmt.Printf("%-9s            behind them can never advance\n", "")
		} else {
			fmt.Printf("%-9s completed in %d cycles with %d context switches\n",
				policy, res.Cycles, res.SwitchesOut)
		}
	}
}
