// Oversubscribe: reproduce the paper's dynamic resource-loss experiment on
// one benchmark. A compute unit is preempted away 50 µs into the kernel —
// the busy-waiting baseline deadlocks (its waiters can never release their
// resources for the evicted work-groups), while the IFP-providing policies
// finish.
//
//	go run ./examples/oversubscribe
package main

import (
	"fmt"

	"awgsim/awg"
	"awgsim/internal/kernels"
)

func main() {
	fmt.Println("Dynamic resource loss (Figure 15's scenario)")
	fmt.Println("============================================")
	fmt.Println()
	fmt.Println("Kernel: TB_LG, a two-level tree barrier across 192 work-groups.")
	fmt.Println("At 50 us, one of the 8 CUs is preempted for a higher-priority task;")
	fmt.Println("its 24 resident work-groups are context-switched out by the kernel-")
	fmt.Println("level scheduler and must wait for execution resources.")
	fmt.Println()

	params := kernels.DefaultParams()
	params.Iters = 40 // long enough that every policy is mid-kernel at 50 us

	var timeout awg.Result
	for _, policy := range []string{"Baseline", "Timeout", "MonNR-One", "AWG"} {
		res, err := awg.Run(awg.Config{
			Benchmark:     "TB_LG",
			Policy:        policy,
			Params:        params,
			Oversubscribe: true,
		})
		if err != nil {
			fmt.Printf("%-10s error: %v\n", policy, err)
			continue
		}
		switch {
		case res.Deadlocked:
			fmt.Printf("%-10s DEADLOCK — %d/%d WGs finished; the barrier waits on WGs\n",
				policy, res.Completed, params.NumWGs)
			fmt.Printf("%-10s            that hold no resources and can never get any back\n", "")
		case policy == "Timeout":
			timeout = res
			fmt.Printf("%-10s completed in %d cycles (%d context switches)\n",
				policy, res.Cycles, res.SwitchesOut)
		default:
			fmt.Printf("%-10s completed in %d cycles (%d context switches", policy, res.Cycles, res.SwitchesOut)
			if timeout.Cycles > 0 {
				fmt.Printf(", %.1fx vs Timeout", res.Speedup(timeout))
			}
			fmt.Println(")")
		}
	}
	fmt.Println()
	fmt.Println("The cooperative policies survive because waiting work-groups yield")
	fmt.Println("their resources: the evicted WGs get slots, arrive at the barrier,")
	fmt.Println("and the SyncMon resumes the waiters.")
}
