// Timeline: visualize how each scheduling architecture spends a wait, as
// measured Figure 6-style timelines — one lane per work-group, time
// flowing left to right.
//
//	go run ./examples/timeline
package main

import (
	"fmt"

	"awgsim/awg"
	"awgsim/internal/gpu"
	"awgsim/internal/mem"
	"awgsim/internal/trace"
)

func main() {
	fmt.Println("Policy timelines on a producer/consumer episode")
	fmt.Println("===============================================")
	fmt.Println()
	fmt.Println("WG0 computes for ~4000 cycles and then writes a flag; seven")
	fmt.Println("consumers wait for it. Watch how each architecture waits.")
	fmt.Println()

	for _, policy := range []string{"Baseline", "Sleep", "MonRS-All", "MonNR-All", "AWG"} {
		rec := trace.NewRecorder(50_000)
		run(policy, rec)
		fmt.Printf("--- %s   (%s)\n", policy, rec.Signature())
		fmt.Println(rec.Timeline(100))
	}
}

func run(policy string, rec *trace.Recorder) {
	const flag = mem.Addr(0x8000)
	cfg := gpu.DefaultConfig()
	cfg.MaxWGsPerCU = 8
	spec := gpu.KernelSpec{
		Name: "episode", NumWGs: 8, WIsPerWG: 64,
		VGPRsPerWI: 8, SGPRsPerWF: 128,
		Program: func(d gpu.Device) {
			v := gpu.GlobalVar(flag)
			if d.ID() == 0 {
				d.Compute(4000)
				d.AtomicStore(v, 1)
				return
			}
			d.AwaitEq(v, 1)
		},
	}
	pol, err := awg.NewPolicy(policy)
	if err != nil {
		panic(err)
	}
	m, err := gpu.NewMachine(cfg, mem.DefaultConfig(), &spec, pol)
	if err != nil {
		panic(err)
	}
	m.SetTracer(rec)
	if res := m.Run(); res.Deadlocked {
		panic(policy + " deadlocked")
	}
}
