// Hashtable: a concurrent hash-table workload (one of the Table 2 caption
// applications) built on the repository's synchronization primitives: work-
// groups insert keys into buckets guarded by per-bucket spin mutexes.
// Compares the scheduling policies on the same kernel.
//
//	go run ./examples/hashtable
package main

import (
	"fmt"

	"awgsim/awg"
	"awgsim/internal/kernels"
)

func main() {
	fmt.Println("Concurrent hash table under four schedulers")
	fmt.Println("===========================================")
	fmt.Println()

	params := kernels.DefaultParams()
	params.Iters = 16 // insertions per WG

	fmt.Printf("%d work-groups insert %d keys each into 16 bucket-locked chains.\n",
		params.NumWGs, params.Iters)
	fmt.Println("Every run is functionally validated: the table must hold exactly")
	fmt.Printf("%d insertions afterwards, whatever the scheduler did.\n", params.NumWGs*params.Iters)
	fmt.Println()

	var base awg.Result
	for i, policy := range []string{"Baseline", "Timeout", "MonNR-One", "AWG"} {
		res, err := awg.Run(awg.Config{Benchmark: "HashTable", Policy: policy, Params: params})
		if err != nil {
			fmt.Printf("%-10s FAILED VALIDATION: %v\n", policy, err)
			continue
		}
		if i == 0 {
			base = res
		}
		fmt.Printf("%-10s %9d cycles  %8d atomics  speedup %.2fx\n",
			policy, res.Cycles, res.Atomics, res.Speedup(base))
	}
	fmt.Println()
	fmt.Println("Bucket locks are moderately contended (16 buckets, many WGs), so the")
	fmt.Println("monitor policies win by parking waiters instead of polling — and the")
	fmt.Println("resume-one discipline hands each bucket to exactly one inserter.")
}
