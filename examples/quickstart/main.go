// Quickstart: run one benchmark under the busy-waiting Baseline and under
// AWG, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"awgsim/awg"
)

func main() {
	fmt.Println("AWG simulator quickstart")
	fmt.Println("========================")
	fmt.Println()
	fmt.Println("Benchmark: SPM_G — every work-group hammers one global test-and-set")
	fmt.Println("lock (HeteroSync's SpinMutex) on the paper's 8-CU GPU.")
	fmt.Println()

	baseline := awg.MustRun(awg.Config{Benchmark: "SPM_G", Policy: "Baseline"})
	fmt.Printf("Baseline (busy-wait): %8d cycles, %7d atomics\n",
		baseline.Cycles, baseline.Atomics)

	result := awg.MustRun(awg.Config{Benchmark: "SPM_G", Policy: "AWG"})
	fmt.Printf("AWG:                  %8d cycles, %7d atomics\n",
		result.Cycles, result.Atomics)

	fmt.Println()
	fmt.Printf("speedup          %.2fx\n", result.Speedup(baseline))
	fmt.Printf("atomic traffic   %.1fx less\n", float64(baseline.Atomics)/float64(result.Atomics))
	fmt.Printf("waits            %d stalls, %d monitor resumes, %d wasted\n",
		result.Stalls, result.Resumes, result.WastedResumes)
	fmt.Printf("predictor        resume-all %d / resume-one %d decisions\n",
		result.PredictAll, result.PredictOne)
	fmt.Println()
	fmt.Println("Under AWG, waiting work-groups register (address, expected value)")
	fmt.Println("conditions with the SyncMon at the L2 via waiting atomics and stall")
	fmt.Println("or context switch instead of polling; the lock release wakes exactly")
	fmt.Println("the predicted number of waiters.")
}
